package datacell

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"datacell/internal/histo"
	"datacell/internal/obs"
)

// initObs wires the engine's self-monitoring: the registry holding the
// control-plane event counters, the bounded event trace, and the
// per-query latency histogram map. Called once from New, before any
// Option runs.
func (e *Engine) initObs() {
	e.reg = obs.NewRegistry()
	e.trace = obs.NewTrace(obs.DefaultTraceCap)
	e.ev = engineCounters{
		rewires:    e.reg.Counter("datacell_engine_rewires_total", "Query-group wiring rebuilds (registration, strategy/parallelism changes, controller decisions).", ""),
		recoveries: e.reg.Counter("datacell_engine_recoveries_total", "WAL recovery passes completed.", ""),
		registers:  e.reg.Counter("datacell_engine_query_registrations_total", "Continuous queries registered.", ""),
		removes:    e.reg.Counter("datacell_engine_query_removals_total", "Continuous queries removed.", ""),
		decisions:  e.reg.Counter("datacell_adapt_decisions_total", "Adaptive-parallelism controller verdicts computed.", ""),
		applies:    e.reg.Counter("datacell_adapt_applies_total", "Controller verdicts that triggered a rewire.", ""),
	}
	e.reg.CounterFunc("datacell_engine_events_total", "Engine trace events recorded (retained or shed from the ring).", "",
		func() int64 { return int64(e.trace.Total()) })
}

// queryRegisteredLocked records a query registration: creates the query's
// ingest-to-emit latency histogram and traces the event. Caller holds
// e.mu.
func (e *Engine) queryRegisteredLocked(name, how string) {
	if e.qlat[name] == nil {
		e.qlat[name] = &histo.H{}
	}
	e.ev.registers.Inc()
	e.trace.Add(obs.Event{Subsystem: "engine", Kind: "register", Name: name,
		Reason: how, Time: e.cat.Now()})
}

// Events returns the engine's retained trace events, oldest first: every
// rewire with its reason and duration, every recovery pass, query
// registration/removal and adapt-controller verdict since engine start
// (bounded by the ring capacity; Snapshot.EventsTotal counts shed
// history too).
func (e *Engine) Events() []obs.Event {
	return e.trace.Events()
}

// Metrics returns the engine's metrics registry, for callers that want to
// register their own series next to the engine's (rendered together by
// WriteMetrics and the admin server's /metrics).
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// WriteMetrics renders the engine's full metric surface in the Prometheus
// text exposition format: the registry-owned event counters plus dynamic
// per-stream and per-query families derived from one consistent Snapshot,
// and the live per-query ingest-to-emit latency summaries. It is the body
// of the admin server's /metrics endpoint and usable standalone.
func (e *Engine) WriteMetrics(w io.Writer) {
	s := e.Snapshot()
	e.reg.WritePrometheus(w)
	writeIngestMetrics(w, s)
	writeWALMetrics(w, s)
	writeBasketMetrics(w, s)
	writeQueryMetrics(w, s)
	e.writeLatencyMetrics(w)
	writeEngineMetrics(w, s)
}

// ingest families, one series per stream (shards of a stream aggregate).
func writeIngestMetrics(w io.Writer, s Snapshot) {
	type agg struct {
		frames, tuples, invalid, timeouts, walErrs, stalls, active int64
		stallT, routeT                                             time.Duration
	}
	var streams []string
	byStream := map[string]*agg{}
	for _, g := range s.Groups {
		if len(g.Receptors) == 0 {
			continue
		}
		a := byStream[g.Stream]
		if a == nil {
			a = &agg{}
			byStream[g.Stream] = a
			streams = append(streams, g.Stream)
		}
		for _, r := range g.Receptors {
			a.frames += r.Frames
			a.tuples += r.Tuples
			a.invalid += r.Invalid
			a.timeouts += r.TimedOut
			a.walErrs += r.WALErrors
			a.stalls += r.Stalls
			a.active += r.Active
			a.stallT += r.StallTime
			a.routeT += r.RouteTime
		}
	}
	if len(streams) == 0 {
		return
	}
	each := func(name, help, typ string, get func(*agg) int64) {
		obs.WriteFamilyHeader(w, name, help, typ)
		for _, st := range streams {
			obs.WriteSample(w, name, obs.Labels("stream", st), get(byStream[st]))
		}
	}
	each("datacell_ingest_frames_total", "Binary frames decoded by receptor shards.", "counter", func(a *agg) int64 { return a.frames })
	each("datacell_ingest_tuples_total", "Tuples delivered into the kernel by receptor shards.", "counter", func(a *agg) int64 { return a.tuples })
	each("datacell_ingest_invalid_total", "Malformed lines / rejected frames.", "counter", func(a *agg) int64 { return a.invalid })
	each("datacell_ingest_timeouts_total", "Connections closed by the idle read deadline.", "counter", func(a *agg) int64 { return a.timeouts })
	each("datacell_ingest_wal_errors_total", "Batches rejected because the WAL append failed.", "counter", func(a *agg) int64 { return a.walErrs })
	each("datacell_ingest_stalls_total", "Backpressure stalls.", "counter", func(a *agg) int64 { return a.stalls })
	each("datacell_ingest_stall_seconds_total", "Total time receptor shards spent stalled on backpressure.", "counter", func(a *agg) int64 { return int64(a.stallT) })
	each("datacell_ingest_route_seconds_total", "Total time receptor shards spent routing batches into the kernel.", "counter", func(a *agg) int64 { return int64(a.routeT) })
	each("datacell_ingest_connections", "Connections currently open.", "gauge", func(a *agg) int64 { return a.active })
}

func writeWALMetrics(w io.Writer, s Snapshot) {
	if len(s.WAL) == 0 {
		return
	}
	each := func(name, help, typ string, get func(WALStreamStats) uint64) {
		obs.WriteFamilyHeader(w, name, help, typ)
		for _, ws := range s.WAL {
			obs.WriteSample(w, name, obs.Labels("stream", ws.Stream), int64(get(ws)))
		}
	}
	each("datacell_wal_frames_total", "Frame records appended to the stream log.", "counter", func(ws WALStreamStats) uint64 { return ws.Frames })
	each("datacell_wal_bytes_total", "Record bytes appended to the stream log.", "counter", func(ws WALStreamStats) uint64 { return ws.Bytes })
	each("datacell_wal_syncs_total", "Fsync batches issued.", "counter", func(ws WALStreamStats) uint64 { return ws.Syncs })
	each("datacell_wal_rotations_total", "Segment rotations.", "counter", func(ws WALStreamStats) uint64 { return ws.Rotations })
	each("datacell_wal_commit_batches_total", "Non-empty group-commit batches.", "counter", func(ws WALStreamStats) uint64 { return ws.Batches })
	each("datacell_wal_commit_batch_frames_total", "Frames across group-commit batches (mean batch = this / batches).", "counter", func(ws WALStreamStats) uint64 { return ws.BatchFrames })
	each("datacell_wal_commit_batch_max", "Largest single group-commit batch.", "gauge", func(ws WALStreamStats) uint64 { return ws.MaxBatch })
}

func writeBasketMetrics(w io.Writer, s Snapshot) {
	if len(s.Baskets) == 0 {
		return
	}
	each := func(name, help, typ string, get func(BasketStats) int64) {
		obs.WriteFamilyHeader(w, name, help, typ)
		for _, b := range s.Baskets {
			obs.WriteSample(w, name, obs.Labels("stream", b.Stream), get(b))
		}
	}
	each("datacell_basket_resident", "Tuples currently held by the stream basket.", "gauge", func(b BasketStats) int64 { return int64(b.Resident) })
	each("datacell_basket_highwater", "Peak resident occupancy of the stream basket.", "gauge", func(b BasketStats) int64 { return b.HighWater })
	each("datacell_basket_appended_total", "Tuples accepted into the stream basket.", "counter", func(b BasketStats) int64 { return b.Appended })
	each("datacell_basket_dropped_total", "Tuples dropped by integrity constraints.", "counter", func(b BasketStats) int64 { return b.Dropped })
	each("datacell_basket_consumed_total", "Tuples removed by factories.", "counter", func(b BasketStats) int64 { return b.Consumed })
}

// query families: the firing kernel, two-phase merge barrier and emit
// stage, one series per continuous query.
func writeQueryMetrics(w io.Writer, s Snapshot) {
	if len(s.Queries) == 0 {
		return
	}
	each := func(name, help, typ string, get func(QueryStats) int64) {
		obs.WriteFamilyHeader(w, name, help, typ)
		for _, q := range s.Queries {
			obs.WriteSample(w, name, obs.Labels("query", q.Name), get(q))
		}
	}
	each("datacell_query_fires_total", "Factory activations executing the query (reset by rewires).", "counter", func(q QueryStats) int64 { return q.Fires })
	each("datacell_query_errors_total", "Activations that returned an error.", "counter", func(q QueryStats) int64 { return q.Errors })
	each("datacell_query_busy_seconds_total", "Cumulative factory body time (the fire stage).", "counter", func(q QueryStats) int64 { return int64(q.Busy) })
	each("datacell_query_out_rows_total", "Tuples appended to the query's output basket.", "counter", func(q QueryStats) int64 { return q.OutRows })
	each("datacell_query_pending", "Tuples waiting in the output basket.", "gauge", func(q QueryStats) int64 { return int64(q.Pending) })
	each("datacell_merge_barrier_waits_total", "Completed two-phase merge barrier waits.", "counter", func(q QueryStats) int64 { return q.MergeWaits })
	each("datacell_merge_barrier_wait_seconds_total", "Time the merge barrier held partial results back.", "counter", func(q QueryStats) int64 { return int64(q.MergeWait) })
	each("datacell_query_emit_busy_seconds_total", "Emitter delivery time (the emit stage).", "counter", func(q QueryStats) int64 { return int64(q.EmitBusy) })
}

// writeLatencyMetrics renders the live per-query ingest-to-emit latency
// histograms as Prometheus summaries (p50/p99/p99.9, _count, _max).
func (e *Engine) writeLatencyMetrics(w io.Writer) {
	e.mu.Lock()
	names := make([]string, 0, len(e.qlat))
	for n := range e.qlat {
		names = append(names, n)
	}
	hs := make(map[string]*histo.H, len(names))
	for _, n := range names {
		hs[n] = e.qlat[n]
	}
	e.mu.Unlock()
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	const name = "datacell_query_latency_seconds"
	obs.WriteFamilyHeader(w, name, "Ingest-to-emit latency: receptor arrival stamp to query firing completion.", "summary")
	for _, n := range names {
		obs.WriteSummary(w, name, obs.Labels("query", n), hs[n])
	}
}

func writeEngineMetrics(w io.Writer, s Snapshot) {
	obs.WriteFamilyHeader(w, "datacell_engine_queries", "Registered continuous queries.", "gauge")
	obs.WriteSample(w, "datacell_engine_queries", "", int64(len(s.Queries)))
	obs.WriteFamilyHeader(w, "datacell_engine_subscriptions", "Live query subscriptions.", "gauge")
	obs.WriteSample(w, "datacell_engine_subscriptions", "", int64(s.Subscriptions))
	obs.WriteFamilyHeader(w, "datacell_engine_started", "1 while the scheduler runs.", "gauge")
	started := int64(0)
	if s.Started {
		started = 1
	}
	obs.WriteSample(w, "datacell_engine_started", "", started)
	if len(s.Groups) > 0 {
		obs.WriteFamilyHeader(w, "datacell_engine_group_rewires_total", "Wiring rebuilds per stream group.", "counter")
		for _, g := range s.Groups {
			obs.WriteSample(w, "datacell_engine_group_rewires_total", obs.Labels("stream", g.Stream), g.Rewires)
		}
	}
}

// ExplainAnalyze reports where a registered continuous query's time goes,
// stage by stage: route (receptor shards delivering into the kernel),
// fire (factory body time), merge (two-phase barrier holds) and emit
// (delivery to subscribers), plus the live ingest-to-emit latency
// quantiles. It reads the counters the running wiring maintains; nothing
// is re-executed. SQL surface: `explain analyze <query-name>` via Exec.
func (e *Engine) ExplainAnalyze(name string) (string, error) {
	e.mu.Lock()
	rec, ok := e.queries[name]
	if !ok {
		e.mu.Unlock()
		return "", fmt.Errorf("datacell: unknown query %q", name)
	}
	// Stage counters for this query only.
	var q QueryStats
	for _, qs := range e.statsLocked() {
		if qs.Name == name {
			q = qs
			break
		}
	}
	// The route stage belongs to the streams feeding the query.
	var streams []string
	switch {
	case rec.member != nil:
		streams = []string{rec.member.scan.Stream}
	default:
		for st := range rec.taps {
			streams = append(streams, st)
		}
		sort.Strings(streams)
	}
	var routeT time.Duration
	shards := 0
	for _, st := range streams {
		g := e.groups[st]
		if g == nil {
			continue
		}
		for _, l := range g.listeners {
			for _, is := range l.Stats() {
				routeT += is.RouteTime
				shards++
			}
		}
	}
	nFactories := len(rec.factories())
	// Barrier presence is structural (a combining merge emitter is wired),
	// not inferred from the wait counters: a barrier whose partials were
	// always ready when checked legitimately reports zero waits.
	hasBarrier := rec.member != nil && rec.member.merge != nil && rec.member.merge.Barrier() != nil
	e.mu.Unlock()

	var b strings.Builder
	kind := "standalone factory"
	if rec.member != nil {
		kind = fmt.Sprintf("group member on stream %s", streams[0])
	}
	fmt.Fprintf(&b, "query %s: %s, %d factor", name, kind, nFactories)
	if nFactories == 1 {
		b.WriteString("y\n")
	} else {
		b.WriteString("ies\n")
	}
	if shards > 0 {
		fmt.Fprintf(&b, "stage route: %s across %d receptor shard(s) on %s\n",
			routeT.Round(time.Microsecond), shards, strings.Join(streams, ","))
	} else {
		b.WriteString("stage route: no receptor shards attached (direct Append path)\n")
	}
	fmt.Fprintf(&b, "stage fire:  %s busy over %d firings", q.Busy.Round(time.Microsecond), q.Fires)
	if q.Fires > 0 {
		fmt.Fprintf(&b, " (avg %s)", (q.Busy / time.Duration(q.Fires)).Round(time.Nanosecond))
	}
	if q.Errors > 0 {
		fmt.Fprintf(&b, ", %d errors", q.Errors)
	}
	b.WriteByte('\n')
	if hasBarrier {
		fmt.Fprintf(&b, "stage merge: %d barrier waits, %s held\n", q.MergeWaits, q.MergeWait.Round(time.Microsecond))
	} else {
		b.WriteString("stage merge: no barrier (unpartitioned or single-phase wiring)\n")
	}
	fmt.Fprintf(&b, "stage emit:  %s delivering, %d rows out (%d pending)\n",
		q.EmitBusy.Round(time.Microsecond), q.OutRows, q.Pending)
	if q.LatCount > 0 {
		fmt.Fprintf(&b, "latency (ingest to emit): n=%d p50=%s p99=%s p99.9=%s max=%s\n",
			q.LatCount, q.LatP50.Round(time.Microsecond), q.LatP99.Round(time.Microsecond),
			q.LatP999.Round(time.Microsecond), q.LatMax.Round(time.Microsecond))
	} else {
		b.WriteString("latency (ingest to emit): no samples yet\n")
	}
	return b.String(), nil
}
