package datacell

import (
	"fmt"
	"math/rand"
	"time"
)

// AggResult is one point of the two-phase aggregation sweep
// (`microbench -fig agg`): a grouped/global aggregation workload at one
// (strategy, parallelism) setting.
type AggResult struct {
	Strategy    Strategy
	Parallelism int
	Queries     int
	Tuples      int
	Batch       int
	Elapsed     time.Duration
	Throughput  float64 // stream tuples per second, feed to drain
	Results     int     // result tuples across all queries
	Partitions  int     // partitions the group wiring actually uses
	Routing     string  // installed routing ("hash(k)", "round-robin", …)
}

// RunAgg measures two-phase partitioned aggregation end to end: q grouped
// queries rotating through sum/avg/min/max/count over hash(k) wiring,
// plus one global aggregate that round-robins, all fed a uniform integer
// stream at the given strategy and parallelism. At P>1 every query runs
// as per-partition partial aggregates folded by a combining merge
// emitter; the sweep's P=1 column is the single-pass baseline the
// differential tests hold the partitioned runs to.
func RunAgg(strategy Strategy, parallelism, q, tuples, batch int, seed int64) (AggResult, error) {
	if q < 1 {
		return AggResult{}, fmt.Errorf("datacell: agg run needs at least 1 query, got %d", q)
	}
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(strategy); err != nil {
		return AggResult{}, err
	}
	if err := eng.SetParallelism(parallelism); err != nil {
		return AggResult{}, err
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		return AggResult{}, err
	}
	aggs := []string{
		`count(*) as n, sum(t.v) as total`,
		`avg(t.v) as a`,
		`min(t.v) as mn, max(t.v) as mx`,
	}
	// Window predicates slice the value domain disjointly so the
	// partial-deletes residue chain leaves every query a share of the
	// stream (and the hash verdicts carry a prune range).
	const domain = int64(100_000)
	width := domain / int64(q)
	window := func(i int) string {
		lo := int64(i) * width
		hi := lo + width
		if i == q-1 {
			hi = domain
		}
		return fmt.Sprintf(`select * from s where v >= %d and v < %d`, lo, hi)
	}
	queries := make([]NamedQuery, 0, q)
	for i := 0; i < q-1; i++ {
		queries = append(queries, NamedQuery{
			Name: fmt.Sprintf("agg_%d", i),
			SQL:  fmt.Sprintf(`select t.k, %s from [%s] t group by t.k`, aggs[i%len(aggs)], window(i)),
		})
	}
	queries = append(queries, NamedQuery{
		Name: "agg_global",
		SQL:  fmt.Sprintf(`select count(*) as n, sum(t.v) as total from [%s] t`, window(q-1)),
	})
	if err := eng.RegisterQueries(queries); err != nil {
		return AggResult{}, err
	}
	if err := eng.Start(); err != nil {
		return AggResult{}, err
	}
	if batch < 1 {
		batch = tuples
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, 0, batch)
	start := time.Now()
	for fed := 0; fed < tuples; {
		n := min(batch, tuples-fed)
		rows = rows[:0]
		for i := 0; i < n; i++ {
			rows = append(rows, Row{rng.Int63n(256), rng.Int63n(100_000)})
		}
		if err := eng.Append("s", rows...); err != nil {
			return AggResult{}, err
		}
		fed += n
	}
	if !eng.Drain(120 * time.Second) {
		return AggResult{}, fmt.Errorf("datacell: agg run (%s, P=%d) did not drain", strategy, parallelism)
	}
	elapsed := time.Since(start)
	res := AggResult{
		Strategy:    strategy,
		Parallelism: parallelism,
		Queries:     q,
		Tuples:      tuples,
		Batch:       batch,
		Elapsed:     elapsed,
		Throughput:  float64(tuples) / elapsed.Seconds(),
		Partitions:  1,
	}
	for _, nq := range queries {
		out, err := eng.Out(nq.Name)
		if err != nil {
			return AggResult{}, err
		}
		res.Results += out.Len()
	}
	for _, g := range eng.Groups() {
		if g.Partitions > res.Partitions {
			res.Partitions = g.Partitions
		}
		res.Routing = g.Routing
	}
	return res, nil
}
