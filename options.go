package datacell

import "time"

// Option configures an Engine at construction time (New). Every option
// delegates to the same internal setter its imperative counterpart uses —
// WithStrategy to SetStrategy, WithWAL to OpenWAL, and so on — which is
// also the code path the SQL pragmas (`set strategy = …`,
// `set parallelism = …`) take. An engine built declaratively is therefore
// indistinguishable from one configured with Set* calls or pragmas; the
// equivalence is differential-tested across strategy × parallelism × WAL.
type Option func(*Engine) error

// WithStrategy selects the multi-query sharing strategy (Figures 2a–2c):
// StrategySeparate, StrategyShared or StrategyPartial. Equivalent to
// SetStrategy.
func WithStrategy(s Strategy) Option {
	return func(e *Engine) error { return e.SetStrategy(s) }
}

// WithParallelism fixes the stream partition count for partitionable
// queries. Equivalent to SetParallelism.
func WithParallelism(p int) Option {
	return func(e *Engine) error { return e.SetParallelism(p) }
}

// WithParallelismAuto hands the partition count to the adaptive load
// controller. Equivalent to SetParallelismAuto (pragma
// `set parallelism = auto`).
func WithParallelismAuto() Option {
	return func(e *Engine) error { return e.SetParallelismAuto() }
}

// WithAdaptOptions tunes the adaptive-parallelism controller. Equivalent
// to SetAdaptOptions.
func WithAdaptOptions(o AdaptOptions) Option {
	return func(e *Engine) error { e.SetAdaptOptions(o); return nil }
}

// WithClock replaces the engine clock (now(), arrival timestamps, emit
// timestamps) for simulated-time runs and deterministic tests. Equivalent
// to SetClock.
func WithClock(now func() time.Time) Option {
	return func(e *Engine) error { e.SetClock(now); return nil }
}

// WithWAL attaches a write-ahead log rooted at dir with default tuning.
// Equivalent to OpenWAL(WALOptions{Dir: dir}).
func WithWAL(dir string) Option {
	return WithWALOptions(WALOptions{Dir: dir})
}

// WithWALOptions attaches a write-ahead log with explicit tuning.
// Equivalent to OpenWAL.
func WithWALOptions(o WALOptions) Option {
	return func(e *Engine) error { return e.OpenWAL(o) }
}
