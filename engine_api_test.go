package datacell

import (
	"bufio"
	"fmt"
	"net"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"datacell/internal/bat"
)

// sortedRelRows renders a relation's rows as sorted pipe-joined strings,
// the byte-comparison currency of the differential tests.
func sortedRelRows(rel *bat.Relation) []string {
	tbl := tableOf(rel)
	rows := make([]string, 0, len(tbl.Rows))
	for _, r := range tbl.Rows {
		parts := make([]string, len(r))
		for i, c := range r {
			parts[i] = fmt.Sprint(c)
		}
		rows = append(rows, strings.Join(parts, "|"))
	}
	sort.Strings(rows)
	return rows
}

// apiEngineVia builds the walQueries workload engine through one of the
// three equivalent configuration surfaces: functional options at New,
// imperative Set* calls, or SQL pragmas. The differential tests below pin
// that the choice of surface never changes a byte of query output.
func apiEngineVia(t *testing.T, how string, s Strategy, p int) *Engine {
	t.Helper()
	var eng *Engine
	switch how {
	case "options":
		eng = New(WithStrategy(s), WithParallelism(p))
		if err := eng.Err(); err != nil {
			t.Fatal(err)
		}
	case "setters":
		eng = New()
		if err := eng.SetStrategy(s); err != nil {
			t.Fatal(err)
		}
		if err := eng.SetParallelism(p); err != nil {
			t.Fatal(err)
		}
	case "pragmas":
		eng = New()
		if _, err := eng.Exec(fmt.Sprintf(`set strategy = '%s'`, s)); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Exec(fmt.Sprintf(`set parallelism = %d`, p)); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown surface %q", how)
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket a (k int, v int, u int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQueries(walQueries); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestOptionsSettersPragmasEquivalent is the API-redesign acceptance
// differential: for every strategy × parallelism, an engine configured
// with functional options, one configured with Set* calls and one
// configured with SQL pragmas produce byte-identical sorted outputs on
// the full mixed workload (slices, windows, grouped aggregates, top-N).
func TestOptionsSettersPragmasEquivalent(t *testing.T) {
	for _, s := range []Strategy{StrategySeparate, StrategyShared, StrategyPartial} {
		for _, p := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/p%d", s, p), func(t *testing.T) {
				var ref map[string][]string
				for _, how := range []string{"options", "setters", "pragmas"} {
					eng := apiEngineVia(t, how, s, p)
					if err := eng.Append("s", walSRows()...); err != nil {
						t.Fatal(err)
					}
					if err := eng.Append("a", walARows()...); err != nil {
						t.Fatal(err)
					}
					if err := eng.RunSync(); err != nil {
						t.Fatal(err)
					}
					got := collectWALOutputs(t, eng)
					eng.Stop()
					if ref == nil {
						ref = got
						continue
					}
					if !reflect.DeepEqual(ref, got) {
						t.Fatalf("surface %q diverged from options-built engine:\noptions: %v\n%s: %v",
							how, ref, how, got)
					}
				}
			})
		}
	}
}

// apiWALFeed builds an engine over the given surface with a WAL at dir,
// feeds n rows over a text listener with the scheduler stopped, and
// crashes it (no checkpoint), leaving the rows only in the log.
func apiWALFeed(t *testing.T, eng *Engine, dir string, n int) {
	t.Helper()
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("low", `select t.k, t.v from [select * from s where v < 100] t`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("rng", `select t.v from [select * from s where v >= 100 and v < 400] t`); err != nil {
		t.Fatal(err)
	}
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(conn)
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%d|%d\n", i%16, (i*37)%2000)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitIngested(t, eng, "s", int64(n))
	eng.Kill()
}

// TestOptionsWALEquivalence runs the crash-and-recover cycle twice — once
// on an engine whose WAL came from New(WithWAL(dir)), once from an
// explicit OpenWAL call — and requires the recovered query outputs to be
// byte-identical to each other and to an undisturbed in-memory reference.
func TestOptionsWALEquivalence(t *testing.T) {
	const n = 300
	outputs := map[string]map[string][]string{}
	for _, how := range []string{"options", "setters"} {
		dir := t.TempDir()
		var eng *Engine
		// SyncBytes 1 makes every frame durable before Kill — the test
		// exercises surface equivalence, not crash-window redelivery.
		if how == "options" {
			eng = New(WithStrategy(StrategyShared), WithParallelism(2),
				WithWALOptions(WALOptions{Dir: dir, SyncBytes: 1}))
			if err := eng.Err(); err != nil {
				t.Fatal(err)
			}
		} else {
			eng = New()
			if err := eng.SetStrategy(StrategyShared); err != nil {
				t.Fatal(err)
			}
			if err := eng.SetParallelism(2); err != nil {
				t.Fatal(err)
			}
			if err := eng.OpenWAL(WALOptions{Dir: dir, SyncBytes: 1}); err != nil {
				t.Fatal(err)
			}
		}
		apiWALFeed(t, eng, dir, n)

		// Recover on a fresh engine built over the same surface.
		var eng2 *Engine
		if how == "options" {
			// WithWAL is the default-tuning sugar over WithWALOptions; the
			// recovery side reads the same log either way.
			eng2 = New(WithStrategy(StrategyShared), WithParallelism(2), WithWAL(dir))
			if err := eng2.Err(); err != nil {
				t.Fatal(err)
			}
		} else {
			eng2 = New()
			if err := eng2.SetStrategy(StrategyShared); err != nil {
				t.Fatal(err)
			}
			if err := eng2.SetParallelism(2); err != nil {
				t.Fatal(err)
			}
			if err := eng2.OpenWAL(WALOptions{Dir: dir}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng2.Exec(`create basket s (k int, v int)`); err != nil {
			t.Fatal(err)
		}
		if err := eng2.RegisterQuery("low", `select t.k, t.v from [select * from s where v < 100] t`); err != nil {
			t.Fatal(err)
		}
		if err := eng2.RegisterQuery("rng", `select t.v from [select * from s where v >= 100 and v < 400] t`); err != nil {
			t.Fatal(err)
		}
		rec, err := eng2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Tuples != n {
			t.Fatalf("%s: recovered %d tuples, want %d", how, rec.Tuples, n)
		}
		if err := eng2.RunSync(); err != nil {
			t.Fatal(err)
		}
		snap := eng2.Snapshot()
		if snap.WALDir != dir {
			t.Errorf("%s: Snapshot().WALDir = %q, want %q", how, snap.WALDir, dir)
		}
		if snap.Recovery == nil || snap.Recovery.Tuples != n {
			t.Errorf("%s: Snapshot().Recovery = %+v, want %d tuples", how, snap.Recovery, n)
		}
		got := map[string][]string{}
		for _, q := range []string{"low", "rng"} {
			out, err := eng2.Out(q)
			if err != nil {
				t.Fatal(err)
			}
			got[q] = sortedRelRows(out.Snapshot())
		}
		outputs[how] = got
		eng2.Stop()
	}

	// In-memory reference: the same rows appended directly, no WAL.
	ref := New(WithStrategy(StrategyShared), WithParallelism(2))
	if _, err := ref.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := ref.RegisterQuery("low", `select t.k, t.v from [select * from s where v < 100] t`); err != nil {
		t.Fatal(err)
	}
	if err := ref.RegisterQuery("rng", `select t.v from [select * from s where v >= 100 and v < 400] t`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := ref.Append("s", Row{int64(i % 16), int64((i * 37) % 2000)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.RunSync(); err != nil {
		t.Fatal(err)
	}
	defer ref.Stop()
	for _, q := range []string{"low", "rng"} {
		out, err := ref.Out(q)
		if err != nil {
			t.Fatal(err)
		}
		want := sortedRelRows(out.Snapshot())
		for _, how := range []string{"options", "setters"} {
			if !reflect.DeepEqual(outputs[how][q], want) {
				t.Errorf("%s %s: recovered output diverged from reference (%d vs %d rows)",
					how, q, len(outputs[how][q]), len(want))
			}
		}
	}
	if !reflect.DeepEqual(outputs["options"], outputs["setters"]) {
		t.Error("WithWAL and OpenWAL recoveries diverged")
	}
}

// TestNewOptionErrorSurfaced pins the misconstruction contract: New keeps
// its single-return signature, a failing option parks the error on the
// engine, and both Err and Start surface it.
func TestNewOptionErrorSurfaced(t *testing.T) {
	eng := New(WithParallelism(0))
	if eng.Err() == nil {
		t.Fatal("Err() = nil for an invalid option")
	}
	if err := eng.Start(); err == nil {
		eng.Stop()
		t.Fatal("Start() accepted a misconstructed engine")
	}
	if New().Err() != nil {
		t.Fatal("Err() non-nil on a clean engine")
	}
}

// TestSubscriptionMetadata pins the Emit contract: per-subscription Seq
// starts at 1 with no gaps, EmitTime comes from the engine clock
// (WithClock-aware), and a late subscription starts its own numbering.
func TestSubscriptionMetadata(t *testing.T) {
	fixed := time.Unix(1700000000, 0)
	eng := New(WithClock(func() time.Time { return fixed }))
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select * from [select * from s] t`); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var emits []Emit
	rows := 0
	sub, err := eng.SubscribeQuery("q", SubscribeOptions{OnEmit: func(em Emit) {
		mu.Lock()
		emits = append(emits, em)
		rows += em.Table.Len()
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SubscribeQuery("q", SubscribeOptions{}); err == nil {
		t.Fatal("SubscribeQuery accepted a nil OnEmit")
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	const n = 5
	for i := 0; i < n; i++ {
		if err := eng.Append("s", Row{i}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		r := rows
		mu.Unlock()
		if r >= n || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	if rows != n {
		t.Fatalf("delivered %d rows, want %d", rows, n)
	}
	for i, em := range emits {
		if em.Seq != int64(i+1) {
			t.Errorf("emit %d: Seq = %d, want %d (contiguous from 1)", i, em.Seq, i+1)
		}
		if !em.EmitTime.Equal(fixed) {
			t.Errorf("emit %d: EmitTime = %v, want the injected clock %v", i, em.EmitTime, fixed)
		}
		if em.Query != "q" {
			t.Errorf("emit %d: Query = %q", i, em.Query)
		}
	}
	batches := int64(len(emits))
	mu.Unlock()
	if sub.Emits() != batches {
		t.Errorf("sub.Emits() = %d, want %d", sub.Emits(), batches)
	}
	if sub.Query() != "q" {
		t.Errorf("sub.Query() = %q", sub.Query())
	}

	// A second subscription numbers its own deliveries from 1.
	var lateFirst atomic64
	late, err := eng.SubscribeQuery("q", SubscribeOptions{OnEmit: func(em Emit) {
		lateFirst.compareAndStore(em.Seq)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Cancel()
	if err := eng.Append("s", Row{99}); err != nil {
		t.Fatal(err)
	}
	for lateFirst.load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := lateFirst.load(); got != 1 {
		t.Errorf("late subscription's first Seq = %d, want 1", got)
	}
}

// atomic64 is a tiny first-value latch for the late-subscription check.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) compareAndStore(v int64) {
	a.mu.Lock()
	if a.v == 0 {
		a.v = v
	}
	a.mu.Unlock()
}

func (a *atomic64) load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

// TestSubscriptionCancelRace hammers Cancel against live emits and
// concurrent strategy/parallelism rewires under -race: cancels must never
// tear the subscriber list, at most one in-flight delivery may land after
// Cancel returns, and the engine ends with zero live subscriptions.
func TestSubscriptionCancelRace(t *testing.T) {
	eng := New(WithStrategy(StrategySeparate), WithParallelism(1))
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select * from [select * from s] t`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	const nSubs = 8
	type tracked struct {
		sub      *Subscription
		mu       sync.Mutex
		count    int64
		atCancel int64
	}
	subs := make([]*tracked, nSubs)
	for i := range subs {
		tr := &tracked{}
		sub, err := eng.SubscribeQuery("q", SubscribeOptions{OnEmit: func(em Emit) {
			tr.mu.Lock()
			tr.count++
			// One subscription cancels itself from inside its own callback.
			if i == 0 && tr.count == 3 {
				tr.atCancel = tr.count
				tr.mu.Unlock()
				tr.sub.Cancel()
				return
			}
			tr.mu.Unlock()
		}})
		if err != nil {
			t.Fatal(err)
		}
		tr.sub = sub
		subs[i] = tr
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := eng.Append("s", Row{seed*100000 + i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ps := []int{1, 2, 4}
		ss := []Strategy{StrategyShared, StrategyPartial, StrategySeparate}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := eng.SetParallelism(ps[i%len(ps)]); err != nil {
				t.Error(err)
				return
			}
			if err := eng.SetStrategy(ss[i%len(ss)]); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	// Cancel the remaining subscriptions at staggered times while the
	// appenders and the rewirer run.
	for i, tr := range subs {
		if i == 0 {
			continue
		}
		wg.Add(1)
		go func(tr *tracked, d time.Duration) {
			defer wg.Done()
			time.Sleep(d)
			tr.mu.Lock()
			tr.atCancel = tr.count
			tr.mu.Unlock()
			tr.sub.Cancel()
			tr.sub.Cancel() // idempotent
		}(tr, time.Duration(10+i*15)*time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	// The rewire storm can starve the subscription emitter so badly that
	// the whole run's output arrives as one or two giant batches — sub 0
	// may not have seen its third delivery yet. Feed small batches at a
	// calm pace until its self-cancel (from inside the callback) fires, so
	// the zero-subscriptions invariant below is actually reachable.
	for i := 0; i < 5000 && !subs[0].sub.cancelled.Load(); i++ {
		if err := eng.Append("s", Row{900000 + i}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if !subs[0].sub.cancelled.Load() {
		t.Fatal("sub 0 never reached its third delivery; self-cancel did not run")
	}
	eng.Drain(10 * time.Second)

	if n := eng.Snapshot().Subscriptions; n != 0 {
		t.Errorf("Snapshot().Subscriptions = %d after cancelling all, want 0", n)
	}
	time.Sleep(20 * time.Millisecond)
	for i, tr := range subs {
		tr.mu.Lock()
		count, at := tr.count, tr.atCancel
		tr.mu.Unlock()
		// atCancel was read just before Cancel; one delivery may already be
		// in flight on the emitter thread, plus one racing the Cancel call
		// itself — anything beyond that is a leak of the cancelled consumer.
		if count > at+2 {
			t.Errorf("sub %d: %d deliveries after Cancel (count %d, at cancel %d)", i, count-at, count, at)
		}
	}
}

// TestDeprecatedSubscribeCompat keeps the old Subscribe seam pinned: it
// must keep compiling and delivering Tables until the seam is dropped.
func TestDeprecatedSubscribeCompat(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select * from [select * from s] t`); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	rows := 0
	//lint:ignore SA1019 the deprecated adapter is the unit under test
	if err := eng.Subscribe("q", func(tb Table) {
		mu.Lock()
		rows += tb.Len()
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if err := eng.Append("s", Row{1}, Row{2}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := rows
		mu.Unlock()
		if n >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if rows != 2 {
		t.Errorf("deprecated Subscribe delivered %d rows, want 2", rows)
	}
}

// TestRemoveQueryCancelsSubscriptions pins the teardown contract: removing
// a query detaches its subscriptions, and re-registering the same name
// starts a fresh emitter with fresh numbering.
func TestRemoveQueryCancelsSubscriptions(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select * from [select * from s] t`); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SubscribeQuery("q", SubscribeOptions{OnEmit: func(Emit) {}}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SubscribeQuery("q", SubscribeOptions{OnEmit: func(Emit) {}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if n := eng.Snapshot().Subscriptions; n != 2 {
		t.Fatalf("Subscriptions = %d, want 2", n)
	}
	if err := eng.RemoveQuery("q"); err != nil {
		t.Fatal(err)
	}
	if n := eng.Snapshot().Subscriptions; n != 0 {
		t.Errorf("Subscriptions = %d after RemoveQuery, want 0", n)
	}

	if err := eng.RegisterQuery("q", `select * from [select * from s] t`); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seqs []int64
	if _, err := eng.SubscribeQuery("q", SubscribeOptions{OnEmit: func(em Emit) {
		mu.Lock()
		seqs = append(seqs, em.Seq)
		mu.Unlock()
	}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("s", Row{7}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(seqs)
		mu.Unlock()
		if n >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) == 0 || seqs[0] != 1 {
		t.Errorf("re-registered query's first Seq = %v, want 1", seqs)
	}
}
