package datacell

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"datacell/internal/lroad"
)

// aggWorkload feeds a randomized stream through an aggregation-heavy
// query mix at the given strategy and parallelism, draining synchronously
// after every batch, and returns each query's full output as a sorted row
// multiset. The mix covers every two-phase shape: hash-routed grouped
// aggregates (sum/count, avg/min/max, having), round-robin global
// aggregates, an expression-keyed group, and a top-N over an outer ORDER
// BY on a unique key (unique so the cut-off is deterministic under any
// partition split).
func aggWorkload(t *testing.T, strategy Strategy, parallelism int, seed int64) map[string][]string {
	t.Helper()
	eng := New()
	if err := eng.SetStrategy(strategy); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(parallelism); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (k int, v int, u int)`); err != nil {
		t.Fatal(err)
	}
	// Window predicates are disjoint so that the partial-deletes residue
	// chain leaves every query a non-empty slice of the stream.
	queries := []NamedQuery{
		{Name: "g_sum", SQL: `select t.k, count(*) as n, sum(t.v) as total from [select * from s where v < 200] t group by t.k`},
		{Name: "g_avg", SQL: `select t.k, avg(t.v) as a, min(t.v) as mn, max(t.v) as mx from [select * from s where v >= 200 and v < 400] t group by t.k`},
		{Name: "g_expr", SQL: `select t.k + 1 as k1, sum(t.v) as sv from [select * from s where v >= 400 and v < 550] t group by t.k + 1`},
		{Name: "g_hav", SQL: `select t.k, count(*) as n from [select * from s where v >= 550 and v < 700] t group by t.k having n > 2`},
		{Name: "glob", SQL: `select count(*) as n, sum(t.v) as total, avg(t.v) as a from [select * from s where v >= 700 and v < 850] t`},
		{Name: "ord", SQL: `select top 8 t.k, t.v, t.u from [select * from s where v >= 850] t order by t.u desc`},
	}
	if err := eng.RegisterQueries(queries); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	uid := int64(0)
	for batch := 0; batch < 10; batch++ {
		n := 30 + rng.Intn(50)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{rng.Int63n(12), rng.Int63n(1000), uid}
			uid++
		}
		if err := eng.Append("s", rows...); err != nil {
			t.Fatal(err)
		}
		if err := eng.RunSync(); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string][]string{}
	for _, q := range queries {
		out, err := eng.Out(q.Name)
		if err != nil {
			t.Fatal(err)
		}
		tbl := tableOf(out.Snapshot())
		rows := make([]string, 0, len(tbl.Rows))
		for _, r := range tbl.Rows {
			parts := make([]string, len(r))
			for i, c := range r {
				parts[i] = fmt.Sprint(c)
			}
			rows = append(rows, strings.Join(parts, "|"))
		}
		sort.Strings(rows)
		got[q.Name] = rows
	}
	return got
}

// TestAggregationDifferential asserts the two-phase decomposition is
// exact: for every sharing strategy, the aggregation mix yields an output
// multiset at P=2 and P=4 identical — including float AVG bit patterns,
// rendered through the same formatting — to the single-partition run.
func TestAggregationDifferential(t *testing.T) {
	for _, strategy := range []Strategy{StrategySeparate, StrategyShared, StrategyPartial} {
		t.Run(string(strategy), func(t *testing.T) {
			base := aggWorkload(t, strategy, 1, 7)
			for _, p := range []int{2, 4} {
				part := aggWorkload(t, strategy, p, 7)
				for name, want := range base {
					gotRows := part[name]
					if len(gotRows) != len(want) {
						t.Errorf("%s: P=%d produced %d rows, P=1 produced %d", name, p, len(gotRows), len(want))
						continue
					}
					for i := range want {
						if gotRows[i] != want[i] {
							t.Errorf("%s: row %d differs: P=%d %q vs P=1 %q", name, i, p, gotRows[i], want[i])
							break
						}
					}
					if len(want) == 0 {
						t.Errorf("%s: workload produced no rows; differential is vacuous", name)
					}
				}
			}
		})
	}
}

// TestHashPruneRouting asserts a grouped plan with a sargable side
// predicate wires hash routing with a prune catch-all: tuples failing the
// necessary condition divert before any partial-aggregate clone copies
// them, the counter surfaces in Groups, and the aggregate stays exact.
func TestHashPruneRouting(t *testing.T) {
	eng := New()
	if err := eng.SetStrategy(StrategySeparate); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.k, sum(t.v) as total from [select * from s where v < 100] t group by t.k`); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 0, 80)
	want := map[int64]int64{}
	for i := 0; i < 50; i++ { // matching: v in [0,100)
		k, v := int64(i%4), int64(i*2%100)
		rows = append(rows, Row{k, v})
		want[k] += v
	}
	for i := 0; i < 30; i++ { // prunable: v >= 100, unreachable by the query
		rows = append(rows, Row{int64(i % 4), int64(100 + i)})
	}
	if err := eng.Append("s", rows...); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	gs := eng.Groups()
	if len(gs) != 1 {
		t.Fatalf("groups: %+v", gs)
	}
	if gs[0].Routing != "hash(k)+prune(v)" {
		t.Fatalf("routing = %q, want hash(k)+prune(v)", gs[0].Routing)
	}
	if gs[0].Pruned != 30 {
		t.Fatalf("pruned = %d, want the 30 tuples outside v < 100", gs[0].Pruned)
	}
	out, err := eng.Out("q")
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, r := range tableOf(out.Snapshot()).Rows {
		got[r[0].(int64)] += r[1].(int64)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("group %d: sum = %d, want %d", k, got[k], w)
		}
	}
}

// TestExplainTwoPhase asserts explain surfaces the two-phase shape: the
// partial/combine split, the combining merge emitter in the wiring line,
// and the prune column of a hash-pruned verdict.
func TestExplainTwoPhase(t *testing.T) {
	eng := New()
	if err := eng.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sql  string
		want []string
	}{
		{
			`select t.k, avg(t.v) as a from [select * from s where v < 100] t group by t.k`,
			[]string{
				"two-phase: partial aggregate per partition + combining merge",
				"combining merge emitter",
				"prune: v in",
			},
		},
		{
			`select count(*) as n from [select * from s] t`,
			[]string{
				"partitioning round-robin across 4 partitions",
				"two-phase: partial aggregate per partition + combining merge",
				"combining merge emitter",
			},
		},
		{
			`select top 5 t.v from [select * from s] t order by t.v`,
			[]string{
				"two-phase: partial sort per partition + k-way combining merge",
				"combining merge emitter",
			},
		},
	}
	for _, c := range cases {
		got, err := eng.Explain(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		for _, w := range c.want {
			if !strings.Contains(got, w) {
				t.Errorf("%s:\nexplain lacks %q:\n%s", c.sql, w, got)
			}
		}
	}
}

// lroadBatches records the Linear Road generator's stream as one row
// batch per benchmark second. Recording once and replaying into every
// engine matters: the generator iterates its car map, so two generator
// instances emit the same traffic in different tuple orders (and schedule
// accidents onto different cars) — only a recorded stream gives P=1 and
// P=4 identical input.
func lroadBatches() [][]Row {
	gen := lroad.NewGenerator(lroad.GenConfig{SF: 0.4, Duration: 150, Seed: 3, XWays: 4})
	var batches [][]Row
	for !gen.Done() {
		tuples := gen.Tick()
		if len(tuples) == 0 {
			continue
		}
		rows := make([]Row, len(tuples))
		for i, tu := range tuples {
			rows[i] = Row{tu.Typ, tu.Time, tu.VID, tu.Spd, tu.XWay, tu.Lane, tu.Dir, tu.Seg, tu.Pos, tu.QID, tu.Day}
		}
		batches = append(batches, rows)
	}
	return batches
}

// lroadWorkload replays a recorded Linear Road position stream through
// segstats-style continuous aggregation on the public engine: per
// (xway, dir, seg, minute) average velocity and car count — the input of
// the benchmark's toll rule — plus a global count of balance requests.
// Returns each query's output as a sorted row multiset.
func lroadWorkload(t *testing.T, parallelism int, batches [][]Row) map[string][]string {
	t.Helper()
	eng := New()
	if err := eng.SetParallelism(parallelism); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`create basket pos (typ int, time int, vid int, spd int, xway int, lane int, dir int, seg int, pos int, qid int, day int)`); err != nil {
		t.Fatal(err)
	}
	queries := []NamedQuery{
		{Name: "segstats", SQL: `select t.xway, t.dir, t.seg, t.time / 60 as minute, avg(t.spd) as lav, count(*) as cars
			from [select * from pos where typ = 0] t
			group by t.xway, t.dir, t.seg, t.time / 60`},
		{Name: "balreq", SQL: `select count(*) as n from [select * from pos where typ = 2] t`},
	}
	if err := eng.RegisterQueries(queries); err != nil {
		t.Fatal(err)
	}
	for _, rows := range batches {
		if err := eng.Append("pos", rows...); err != nil {
			t.Fatal(err)
		}
		if err := eng.RunSync(); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string][]string{}
	for _, q := range queries {
		out, err := eng.Out(q.Name)
		if err != nil {
			t.Fatal(err)
		}
		tbl := tableOf(out.Snapshot())
		rows := make([]string, 0, len(tbl.Rows))
		for _, r := range tbl.Rows {
			parts := make([]string, len(r))
			for i, c := range r {
				parts[i] = fmt.Sprint(c)
			}
			rows = append(rows, strings.Join(parts, "|"))
		}
		sort.Strings(rows)
		got[q.Name] = rows
	}
	return got
}

// TestLinearRoadStyleDifferential asserts that partitioned two-phase
// aggregation over the Linear Road position stream is byte-identical to
// single-partition execution: segstats hash-partitions on xway with a
// combining merge folding (sum, count) partials into the exact per-segment
// lav, and the balance-request count round-robins with a combining merge.
func TestLinearRoadStyleDifferential(t *testing.T) {
	batches := lroadBatches()
	base := lroadWorkload(t, 1, batches)
	part := lroadWorkload(t, 4, batches)
	for name, want := range base {
		gotRows := part[name]
		if len(gotRows) != len(want) {
			t.Fatalf("%s: P=4 produced %d rows, P=1 produced %d", name, len(gotRows), len(want))
		}
		for i := range want {
			if gotRows[i] != want[i] {
				t.Fatalf("%s: row %d differs: P=4 %q vs P=1 %q", name, i, gotRows[i], want[i])
			}
		}
		if len(want) == 0 {
			t.Fatalf("%s: workload produced no rows; differential is vacuous", name)
		}
	}
}
