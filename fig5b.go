package datacell

import (
	"fmt"
	"math/rand"
	"time"
)

// Fig5bResult is one point of the engine-level Figure 5b sweep: the time
// to push one batch of tuples through q continuous queries registered via
// the public SQL API under one multi-query processing strategy.
type Fig5bResult struct {
	Strategy Strategy
	Queries  int
	Tuples   int
	Elapsed  time.Duration // processing time of the batch (RunSync)
	Results  int           // result tuples across all queries
	// StreamAppended counts tuples ingested by the stream basket itself —
	// always one append per arriving tuple.
	StreamAppended int64
	// ReplicaAppended counts tuples copied into per-query private baskets:
	// about Queries×Tuples under the separate strategy, 0 under shared and
	// partial, where the queries work on the stream basket directly.
	ReplicaAppended int64
}

// RunFig5b reproduces the paper's Figure 5b experiment through the public
// engine API: q continuous queries with disjoint 10-unit predicate
// windows are registered over one stream under the given strategy, a
// batch of `tuples` uniform random tuples is appended, and the engine is
// drained synchronously. The same experiment hand-wired at the kernel
// level lives in internal/microbench.RunStrategySweep.
func RunFig5b(strategy Strategy, q, tuples int, seed int64) (Fig5bResult, error) {
	eng := New()
	if err := eng.SetStrategy(strategy); err != nil {
		return Fig5bResult{}, err
	}
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		return Fig5bResult{}, err
	}
	const width = 10
	domain := int64(10_000)
	if int64(q)*width > domain {
		domain = int64(q) * width
	}
	queries := make([]NamedQuery, q)
	for i := 0; i < q; i++ {
		lo := int64(i) * width
		hi := lo + width
		queries[i] = NamedQuery{
			Name: fmt.Sprintf("fig5b_%d", i),
			SQL:  fmt.Sprintf(`select t.v from [select * from s where v >= %d and v < %d] t`, lo, hi),
		}
	}
	if err := eng.RegisterQueries(queries); err != nil {
		return Fig5bResult{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, tuples)
	for i := range rows {
		rows[i] = Row{rng.Int63n(domain)}
	}
	if err := eng.Append("s", rows...); err != nil {
		return Fig5bResult{}, err
	}
	start := time.Now()
	if err := eng.RunSync(); err != nil {
		return Fig5bResult{}, err
	}
	res := Fig5bResult{
		Strategy:       strategy,
		Queries:        q,
		Tuples:         tuples,
		Elapsed:        time.Since(start),
		StreamAppended: eng.Catalog().Basket("s").Stats().Appended,
	}
	for i := 0; i < q; i++ {
		out, err := eng.Out(fmt.Sprintf("fig5b_%d", i))
		if err != nil {
			return Fig5bResult{}, err
		}
		res.Results += out.Len()
	}
	for _, g := range eng.Groups() {
		res.ReplicaAppended += g.ReplicaAppended
	}
	return res, nil
}
