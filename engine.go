// Package datacell is a stream engine built on top of a relational
// column-store kernel, reproducing the DataCell architecture (Liarou,
// Goncalves, Idreos — EDBT 2009).
//
// Incoming tuples are appended to baskets (temporary stream tables);
// continuous queries are compiled into factories — query plans with saved
// execution state — that a Petri-net scheduler fires whenever their input
// baskets hold tuples. Tuples consumed by a query's basket expression are
// removed from their baskets, which makes windows move. Basket expressions
// ([select … from …] sub-queries) generalise sliding windows to predicate
// windows, and collecting tuples in baskets enables batch processing.
//
// Typical use:
//
//	eng := datacell.New()
//	eng.Exec(`create basket trades (sym string, px float)`)
//	eng.RegisterQuery("big", `select * from [select * from trades] t where t.px > 100`)
//	eng.Subscribe("big", func(t datacell.Table) { fmt.Println(t.Rows) })
//	eng.Start()
//	eng.Append("trades", datacell.Row{"ACME", 250.0})
package datacell

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/core"
	"datacell/internal/plan"
	"datacell/internal/sql"
	"datacell/internal/stream"
	"datacell/internal/vector"
)

// Row is one tuple in the public API. Supported element types: int, int32,
// int64, float64, bool, string, time.Time.
type Row []any

// Table is a materialised query result or delivered batch.
type Table struct {
	Cols []string
	Rows []Row
}

// Len returns the number of rows.
func (t Table) Len() int { return len(t.Rows) }

// QueryInfo describes one registered continuous query.
type QueryInfo struct {
	Name       string
	Continuous bool
}

// Engine is a DataCell instance: a catalog of baskets and tables, a
// Petri-net scheduler of factories, and the stream periphery. Queries are
// registered with Exec/RegisterQuery; streams are fed with Append or TCP
// receptors; results are consumed with Subscribe or TCP emitters.
//
// Multi-query processing uses the separate-baskets strategy: every
// continuous query consuming a stream gets a private input basket and a
// replicator fans arriving tuples out, so queries run fully independently
// (the paper's Figure 2a). The shared-baskets and partial-deletes
// strategies are available on the kernel level (internal/core) and
// compared in the Figure 5b benchmark.
type Engine struct {
	mu        sync.Mutex
	cat       *plan.Catalog
	sch       *core.Scheduler
	queries   map[string]*plan.Compiled
	emitters  []*stream.Emitter
	tcpIn     []*stream.TCPReceptor
	tcpOut    []*stream.TCPEmitter
	consumers map[string][]*basket.Basket // stream name -> private baskets
	repls     map[string]*core.Factory    // stream name -> replicator
	started   bool
	qctr      int
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{
		cat:       plan.NewCatalog(),
		sch:       core.NewScheduler(),
		queries:   map[string]*plan.Compiled{},
		consumers: map[string][]*basket.Basket{},
		repls:     map[string]*core.Factory{},
	}
}

// SetClock replaces the engine clock (now(), arrival timestamps). Intended
// for simulated-time benchmark runs and deterministic tests.
func (e *Engine) SetClock(now func() time.Time) { e.cat.SetClock(now) }

// Catalog exposes the underlying catalog for advanced wiring (benchmark
// harnesses, custom factories).
func (e *Engine) Catalog() *plan.Catalog { return e.cat }

// Scheduler exposes the underlying scheduler for advanced wiring.
func (e *Engine) Scheduler() *core.Scheduler { return e.sch }

// Exec parses and executes a script of semicolon-separated statements.
// DDL, declares, sets and one-time inserts take effect immediately;
// continuous queries are registered under generated names q1, q2, ….
// It returns one QueryInfo per statement.
func (e *Engine) Exec(src string) ([]QueryInfo, error) {
	stmts, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	var infos []QueryInfo
	for _, s := range stmts {
		e.mu.Lock()
		e.qctr++
		name := fmt.Sprintf("q%d", e.qctr)
		e.mu.Unlock()
		info, err := e.register(name, s)
		if err != nil {
			return infos, err
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// RegisterQuery registers a single (usually continuous) statement under an
// explicit name. The name identifies the query for Subscribe and Out.
func (e *Engine) RegisterQuery(name, src string) error {
	s, err := sql.ParseOne(src)
	if err != nil {
		return err
	}
	_, err = e.register(name, s)
	return err
}

func (e *Engine) register(name string, s sql.Statement) (QueryInfo, error) {
	// Route stream consumption through a private basket per query
	// (separate-baskets strategy).
	privates := map[string]*basket.Basket{}
	if isContinuousStmt(s) {
		if err := e.rewriteToPrivate(name, s, privates); err != nil {
			return QueryInfo{}, err
		}
	}
	c, err := plan.Compile(e.cat, s, name)
	if err != nil {
		return QueryInfo{}, err
	}
	if c.Factory == nil {
		return QueryInfo{Name: name}, nil
	}
	e.mu.Lock()
	e.queries[name] = c
	for streamName, priv := range privates {
		e.consumers[streamName] = append(e.consumers[streamName], priv)
	}
	e.mu.Unlock()
	for streamName := range privates {
		if err := e.ensureReplicator(streamName); err != nil {
			return QueryInfo{}, err
		}
	}
	if err := e.sch.Register(c.Factory); err != nil {
		return QueryInfo{}, err
	}
	return QueryInfo{Name: name, Continuous: true}, nil
}

func isContinuousStmt(s sql.Statement) bool {
	switch t := s.(type) {
	case *sql.SelectStmt:
		return t.IsContinuous()
	case *sql.InsertStmt:
		return t.Query.IsContinuous()
	case *sql.WithBlock:
		return true
	}
	return false
}

// rewriteToPrivate renames every stream reference inside the statement's
// basket expressions to a fresh private basket owned by this query,
// creating the private basket with the stream's schema.
func (e *Engine) rewriteToPrivate(qname string, s sql.Statement, privates map[string]*basket.Basket) error {
	var walkSel func(sel *sql.SelectStmt, inBasket bool) error
	walkSel = func(sel *sql.SelectStmt, inBasket bool) error {
		for i := range sel.From {
			tr := &sel.From[i]
			switch {
			case tr.Basket != nil:
				if err := walkSel(tr.Basket, true); err != nil {
					return err
				}
			case tr.Sub != nil:
				if err := walkSel(tr.Sub, inBasket); err != nil {
					return err
				}
			default:
				if !inBasket {
					continue
				}
				src := e.cat.Basket(tr.Name)
				if src == nil || e.cat.KindOf(tr.Name) != plan.KindBasket {
					continue
				}
				privName := tr.Name + "$" + strings.ToLower(qname)
				if e.cat.Basket(privName) == nil {
					names, types := src.UserSchema()
					if _, err := e.cat.CreateBasket(privName, names, types, plan.KindBasket); err != nil {
						return err
					}
				}
				privates[tr.Name] = e.cat.Basket(privName)
				if tr.Alias == tr.Name {
					tr.Alias = tr.Name // keep original alias for column refs
				}
				tr.Name = privName
			}
		}
		return nil
	}
	switch t := s.(type) {
	case *sql.SelectStmt:
		return walkSel(t, false)
	case *sql.InsertStmt:
		return walkSel(t.Query, false)
	case *sql.WithBlock:
		return walkSel(t.Basket, true)
	}
	return nil
}

// ensureReplicator installs (once per stream) the factory that moves
// arriving tuples from the stream basket into every consumer's private
// basket. The consumer list is read dynamically, so queries can be added
// while the engine runs.
func (e *Engine) ensureReplicator(streamName string) error {
	e.mu.Lock()
	if _, ok := e.repls[streamName]; ok {
		e.mu.Unlock()
		return nil
	}
	src := e.cat.Basket(streamName)
	e.mu.Unlock()
	if src == nil {
		return fmt.Errorf("datacell: unknown stream %q", streamName)
	}
	// The replicator's nominal output is the first private basket; the
	// actual fan-out list is read per firing so later queries join in.
	e.mu.Lock()
	first := e.consumers[streamName][0]
	e.mu.Unlock()
	f, err := core.NewFactory("replicate$"+streamName,
		[]*basket.Basket{src}, []*basket.Basket{first},
		func(ctx *core.Context) error {
			rel := ctx.In(0).TakeAllLocked()
			if rel.Len() == 0 {
				return nil
			}
			e.mu.Lock()
			outs := append([]*basket.Basket(nil), e.consumers[streamName]...)
			e.mu.Unlock()
			for _, o := range outs {
				if o == first {
					if _, err := ctx.Out(0).AppendLocked(rel); err != nil {
						return err
					}
					continue
				}
				// Later consumers are outside the lock set; Append takes
				// their basket lock individually (no cycles: replicators
				// only feed downstream).
				if _, err := o.Append(rel); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.repls[streamName] = f
	e.mu.Unlock()
	return e.sch.Register(f)
}

// Explain returns a human-readable description of how a statement would
// be compiled: firing inputs with thresholds, locked side inputs, and the
// operator pipeline. Nothing is created or registered.
func (e *Engine) Explain(src string) (string, error) {
	s, err := sql.ParseOne(src)
	if err != nil {
		return "", err
	}
	return plan.Explain(e.cat, s, "query")
}

// QueryStats reports the activity counters of one registered continuous
// query.
type QueryStats struct {
	Name    string
	Fires   int64 // factory activations
	Errors  int64 // activations that returned an error
	LastErr error
	OutRows int64 // tuples appended to the output basket over time
	Pending int   // tuples currently waiting in the output basket
}

// Stats returns activity counters for every registered continuous query,
// sorted by name.
func (e *Engine) Stats() []QueryStats {
	e.mu.Lock()
	names := make([]string, 0, len(e.queries))
	for n := range e.queries {
		names = append(names, n)
	}
	qs := make(map[string]*plan.Compiled, len(e.queries))
	for n, c := range e.queries {
		qs[n] = c
	}
	e.mu.Unlock()
	sort.Strings(names)
	out := make([]QueryStats, 0, len(names))
	for _, n := range names {
		c := qs[n]
		st := c.Out.Stats()
		out = append(out, QueryStats{
			Name:    n,
			Fires:   c.Factory.Fires(),
			Errors:  c.Factory.Errors(),
			LastErr: c.Factory.LastError(),
			OutRows: st.Appended,
			Pending: c.Out.Len(),
		})
	}
	return out
}

// RemoveQuery unregisters a continuous query: its factory stops firing,
// its private input baskets stop receiving replicated tuples, and its
// output basket is left in place (drain it or let subscribers finish).
func (e *Engine) RemoveQuery(name string) error {
	e.mu.Lock()
	c, ok := e.queries[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("datacell: unknown query %q", name)
	}
	delete(e.queries, name)
	suffix := "$" + strings.ToLower(name)
	for streamName, privs := range e.consumers {
		kept := privs[:0]
		for _, p := range privs {
			if strings.HasSuffix(p.Name(), suffix) {
				continue
			}
			kept = append(kept, p)
		}
		e.consumers[streamName] = kept
	}
	e.mu.Unlock()
	e.sch.Unregister(c.Factory)
	return nil
}

// Query runs a one-time query immediately and returns its rows.
func (e *Engine) Query(src string) (Table, error) {
	s, err := sql.ParseOne(src)
	if err != nil {
		return Table{}, err
	}
	sel, ok := s.(*sql.SelectStmt)
	if !ok {
		return Table{}, fmt.Errorf("datacell: Query expects a select statement")
	}
	if sel.IsContinuous() {
		return Table{}, fmt.Errorf("datacell: Query is for one-time queries; use RegisterQuery for continuous ones")
	}
	rel, err := plan.ExecuteQuery(e.cat, sel)
	if err != nil {
		return Table{}, err
	}
	return tableOf(rel), nil
}

// Out returns the output basket of a registered continuous query.
func (e *Engine) Out(query string) (*basket.Basket, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.queries[query]
	if !ok {
		return nil, fmt.Errorf("datacell: unknown query %q", query)
	}
	return c.Out, nil
}

// Subscribe delivers every result batch of the named continuous query to
// fn on the emitter thread. Call before Start.
func (e *Engine) Subscribe(query string, fn func(t Table)) error {
	out, err := e.Out(query)
	if err != nil {
		return err
	}
	em := stream.NewEmitter(out)
	em.Subscribe(func(rel *bat.Relation) { fn(tableOf(rel)) })
	e.mu.Lock()
	e.emitters = append(e.emitters, em)
	started := e.started
	e.mu.Unlock()
	if started {
		em.Start()
	}
	return nil
}

// Append feeds rows into a stream basket.
func (e *Engine) Append(streamName string, rows ...Row) error {
	b := e.cat.Basket(streamName)
	if b == nil {
		return fmt.Errorf("datacell: unknown stream %q", streamName)
	}
	names, types := b.UserSchema()
	rel := bat.NewEmptyRelation(names, types)
	for _, r := range rows {
		vals, err := valuesOf(r, types)
		if err != nil {
			return err
		}
		rel.AppendRow(vals...)
	}
	_, err := b.Append(rel)
	return err
}

// ListenTCP attaches a TCP receptor to a stream: every line received on
// the address is parsed as a pipe-separated tuple and appended. It
// returns the bound address.
func (e *Engine) ListenTCP(streamName, addr string) (string, error) {
	b := e.cat.Basket(streamName)
	if b == nil {
		return "", fmt.Errorf("datacell: unknown stream %q", streamName)
	}
	tr, err := stream.ListenTCP(addr, stream.NewReceptor(b))
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	e.tcpIn = append(e.tcpIn, tr)
	e.mu.Unlock()
	return tr.Addr(), nil
}

// ServeTCP attaches a TCP emitter to a continuous query's results. Every
// connected client receives all subsequent result tuples, one line each.
func (e *Engine) ServeTCP(query, addr string) (string, error) {
	out, err := e.Out(query)
	if err != nil {
		return "", err
	}
	te, err := stream.ServeTCP(addr, stream.NewEmitter(out))
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	e.tcpOut = append(e.tcpOut, te)
	started := e.started
	e.mu.Unlock()
	if started {
		te.Emitter.Start()
	}
	return te.Addr(), nil
}

// Start launches the scheduler and all subscribed emitters.
func (e *Engine) Start() error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return fmt.Errorf("datacell: engine already started")
	}
	e.started = true
	ems := append([]*stream.Emitter(nil), e.emitters...)
	touts := append([]*stream.TCPEmitter(nil), e.tcpOut...)
	e.mu.Unlock()
	if err := e.sch.Start(); err != nil {
		return err
	}
	for _, em := range ems {
		em.Start()
	}
	for _, t := range touts {
		t.Emitter.Start()
	}
	return nil
}

// Drain blocks until the factory network is quiescent or the timeout
// elapses, reporting whether it drained. Useful after feeding a known
// amount of input.
func (e *Engine) Drain(timeout time.Duration) bool {
	return e.sch.WaitQuiescent(timeout)
}

// RunSync fires enabled factories on the calling goroutine until the
// network quiesces. It is the synchronous alternative to Start for batch
// feeding and benchmarks.
func (e *Engine) RunSync() error {
	_, err := e.sch.RunUntilQuiescent(0)
	return err
}

// Stop shuts down the scheduler, TCP endpoints and emitters.
func (e *Engine) Stop() {
	e.mu.Lock()
	started := e.started
	e.started = false
	tins := append([]*stream.TCPReceptor(nil), e.tcpIn...)
	touts := append([]*stream.TCPEmitter(nil), e.tcpOut...)
	ems := append([]*stream.Emitter(nil), e.emitters...)
	e.mu.Unlock()
	for _, t := range tins {
		t.Close()
	}
	if started {
		e.sch.Stop()
	}
	for _, t := range touts {
		t.Close()
	}
	for _, em := range ems {
		em.Stop()
	}
}

// tableOf converts an internal relation (user columns only; internal
// columns are dropped) into a public Table.
func tableOf(rel *bat.Relation) Table {
	var cols []string
	var idx []int
	for i, n := range rel.Names() {
		if n == basket.TimestampCol || strings.HasPrefix(n, "__") {
			continue
		}
		cols = append(cols, n)
		idx = append(idx, i)
	}
	t := Table{Cols: cols}
	for r := 0; r < rel.Len(); r++ {
		row := make(Row, len(idx))
		for j, i := range idx {
			row[j] = goValue(rel.Col(i).Get(r))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func goValue(v vector.Value) any {
	switch v.Kind {
	case vector.Int:
		return v.I
	case vector.Float:
		return v.F
	case vector.Bool:
		return v.B
	case vector.Str:
		return v.S
	case vector.Timestamp:
		return time.UnixMicro(v.I)
	}
	return nil
}

func valuesOf(r Row, types []vector.Type) ([]vector.Value, error) {
	if len(r) != len(types) {
		return nil, fmt.Errorf("datacell: row has %d values, want %d", len(r), len(types))
	}
	out := make([]vector.Value, len(r))
	for i, x := range r {
		v, err := toValue(x, types[i])
		if err != nil {
			return nil, fmt.Errorf("datacell: column %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func toValue(x any, t vector.Type) (vector.Value, error) {
	switch v := x.(type) {
	case int:
		return numericAs(int64(v), t)
	case int32:
		return numericAs(int64(v), t)
	case int64:
		return numericAs(v, t)
	case float64:
		if t == vector.Float {
			return vector.NewFloat(v), nil
		}
		return numericAs(int64(v), t)
	case bool:
		if t != vector.Bool {
			return vector.Value{}, fmt.Errorf("bool value for %s column", t)
		}
		return vector.NewBool(v), nil
	case string:
		if t != vector.Str {
			return vector.ParseValue(t, v)
		}
		return vector.NewStr(v), nil
	case time.Time:
		if t != vector.Timestamp {
			return vector.Value{}, fmt.Errorf("time value for %s column", t)
		}
		return vector.NewTimestamp(v), nil
	}
	return vector.Value{}, fmt.Errorf("unsupported value type %T", x)
}

func numericAs(i int64, t vector.Type) (vector.Value, error) {
	switch t {
	case vector.Int:
		return vector.NewInt(i), nil
	case vector.Timestamp:
		return vector.NewTimestampMicros(i), nil
	case vector.Float:
		return vector.NewFloat(float64(i)), nil
	}
	return vector.Value{}, fmt.Errorf("numeric value for %s column", t)
}
