// Package datacell is a stream engine built on top of a relational
// column-store kernel, reproducing the DataCell architecture (Liarou,
// Goncalves, Idreos — EDBT 2009).
//
// Incoming tuples are appended to baskets (temporary stream tables);
// continuous queries are compiled into factories — query plans with saved
// execution state — that a Petri-net scheduler fires whenever their input
// baskets hold tuples. Tuples consumed by a query's basket expression are
// removed from their baskets, which makes windows move. Basket expressions
// ([select … from …] sub-queries) generalise sliding windows to predicate
// windows, and collecting tuples in baskets enables batch processing.
//
// Typical use:
//
//	eng := datacell.New(datacell.WithStrategy(datacell.StrategyShared))
//	eng.Exec(`create basket trades (sym string, px float)`)
//	eng.RegisterQuery("big", `select * from [select * from trades] t where t.px > 100`)
//	sub, _ := eng.SubscribeQuery("big", datacell.SubscribeOptions{
//		OnEmit: func(em datacell.Emit) { fmt.Println(em.Table.Rows) },
//	})
//	eng.Start()
//	eng.Append("trades", datacell.Row{"ACME", 250.0})
//	// … later: sub.Cancel()
package datacell

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/core"
	"datacell/internal/expr"
	"datacell/internal/histo"
	"datacell/internal/ingest"
	"datacell/internal/obs"
	"datacell/internal/plan"
	"datacell/internal/sql"
	"datacell/internal/stream"
	"datacell/internal/vector"
)

// Row is one tuple in the public API. Supported element types: int, int32,
// int64, float64, bool, string, time.Time.
type Row []any

// Table is a materialised query result or delivered batch.
type Table struct {
	Cols []string
	Rows []Row
}

// Len returns the number of rows.
func (t Table) Len() int { return len(t.Rows) }

// QueryInfo describes one registered continuous query. Text carries the
// rendered output of informational statements (explain, explain analyze)
// and is empty for everything else.
type QueryInfo struct {
	Name       string
	Continuous bool
	Text       string
}

// Engine is a DataCell instance: a catalog of baskets and tables, a
// Petri-net scheduler of factories, and the stream periphery. Queries are
// registered with Exec/RegisterQuery; streams are fed with Append or TCP
// receptors; results are consumed with Subscribe or TCP emitters.
//
// Multi-query processing is organised per stream by query groups: every
// continuous query consuming exactly one stream compiles to a reusable
// stream-scan artifact, and the group wires all of a stream's artifacts
// under the engine's strategy — separate private baskets (Figure 2a, the
// default), one shared basket (Figure 2b) or a partial-delete chain
// (Figure 2c). The strategy is selected with SetStrategy or the pragma
// `set strategy = '…'` and groups rewire live when queries come and go.
// Queries consuming several streams keep a private replica per stream.
type Engine struct {
	mu          sync.Mutex
	cat         *plan.Catalog
	sch         *core.Scheduler
	strategy    Strategy
	parallelism int // stream partitions for partitionable queries
	queries     map[string]*queryRec
	groups      map[string]*queryGroup   // stream name -> sharing group
	subs        map[string]*queryEmitter // query name -> result fan-out
	tcpOut      []*stream.TCPEmitter
	started     bool
	qctr        int

	// initErr records the first construction Option that failed; Err and
	// Start surface it (New keeps its single-value signature so zero-arg
	// call sites stay source compatible).
	initErr error

	// lastRecovery keeps the report of the most recent WAL Recover pass
	// for Snapshot (nil until a recovery has run).
	lastRecovery *RecoveryInfo

	// wal is the engine's write-ahead logging state (nil until OpenWAL):
	// per-stream logs that receptor deliveries tee into and Recover
	// replays from.
	wal *walState

	// Adaptive parallelism: autoParallel hands the partition count of
	// groups without a per-stream override to the load controller;
	// adaptOpts tunes the controllers; adaptStop/adaptDone bound the
	// sampling metronome goroutine Start launches.
	autoParallel bool
	adaptOpts    AdaptOptions
	adaptStop    chan struct{}
	adaptDone    chan struct{}

	// Observability: reg holds the engine-owned event counters (rewires,
	// recoveries, registrations, controller decisions); trace is the
	// bounded ring of engine events /events and \events render; qlat maps
	// query name to its ingest-to-emit latency histogram, attached to the
	// query's factories at every (re)wire; ev caches the counter handles;
	// admin is the opt-in HTTP server (nil until ServeAdmin).
	reg   *obs.Registry
	trace *obs.Trace
	qlat  map[string]*histo.H
	ev    engineCounters
	admin *AdminServer
}

// engineCounters are the registry-owned control-plane counters: every one
// counts an event that also lands in the trace ring.
type engineCounters struct {
	rewires    *obs.Counter
	recoveries *obs.Counter
	registers  *obs.Counter
	removes    *obs.Counter
	decisions  *obs.Counter // controller Decide calls that produced a verdict
	applies    *obs.Counter // verdicts that triggered a rewire
}

// queryRec tracks one registered continuous query: shareable queries are
// group members (wired and rewired by their stream's query group), all
// others own a standalone compiled factory fed by private replica taps.
type queryRec struct {
	name     string
	out      *basket.Basket
	member   *groupMember              // group-wired single-stream queries
	compiled *plan.Compiled            // standalone path
	taps     map[string]*basket.Basket // stream name -> private replica
}

// factories returns the factories currently executing the query — one for
// standalone and unpartitioned group wirings, one clone per partition
// under partitioned wirings (empty only while a group rewire is in
// flight). Group rewires replace a member's factories under e.mu, so
// callers must hold e.mu.
func (r *queryRec) factories() []*core.Factory {
	if r.compiled != nil {
		return []*core.Factory{r.compiled.Factory}
	}
	if r.member != nil {
		return r.member.factories
	}
	return nil
}

// New returns an empty engine using the separate-baskets strategy at
// parallelism 1, then applies the given Options in order. Options route
// through the same internal setters as the Set* methods and SQL pragmas,
// so New(WithStrategy(s)) and New() + SetStrategy(s) are interchangeable.
// A failing option is recorded rather than returned (keeping the
// historical single-value signature); Err reports it and Start refuses to
// run a misconstructed engine.
func New(opts ...Option) *Engine {
	e := &Engine{
		cat:         plan.NewCatalog(),
		sch:         core.NewScheduler(),
		strategy:    StrategySeparate,
		parallelism: 1,
		queries:     map[string]*queryRec{},
		groups:      map[string]*queryGroup{},
		subs:        map[string]*queryEmitter{},
		qlat:        map[string]*histo.H{},
	}
	e.initObs()
	for _, opt := range opts {
		if err := opt(e); err != nil && e.initErr == nil {
			e.initErr = err
		}
	}
	return e
}

// Err reports the first construction Option that failed, or nil for a
// cleanly constructed engine.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.initErr
}

// SetClock replaces the engine clock (now(), arrival timestamps). Intended
// for simulated-time benchmark runs and deterministic tests.
func (e *Engine) SetClock(now func() time.Time) { e.cat.SetClock(now) }

// Catalog exposes the underlying catalog for advanced wiring (benchmark
// harnesses, custom factories).
func (e *Engine) Catalog() *plan.Catalog { return e.cat }

// Scheduler exposes the underlying scheduler for advanced wiring.
func (e *Engine) Scheduler() *core.Scheduler { return e.sch }

// Exec parses and executes a script of semicolon-separated statements.
// DDL, declares, sets and one-time inserts take effect immediately;
// continuous queries are registered under generated names q1, q2, ….
// It returns one QueryInfo per statement.
func (e *Engine) Exec(src string) ([]QueryInfo, error) {
	stmts, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	var infos []QueryInfo
	for _, s := range stmts {
		e.mu.Lock()
		e.qctr++
		name := fmt.Sprintf("q%d", e.qctr)
		e.mu.Unlock()
		info, err := e.register(name, s)
		if err != nil {
			return infos, err
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// RegisterQuery registers a single (usually continuous) statement under an
// explicit name. The name identifies the query for Subscribe and Out.
func (e *Engine) RegisterQuery(name, src string) error {
	s, err := sql.ParseOne(src)
	if err != nil {
		return err
	}
	_, err = e.register(name, s)
	return err
}

func (e *Engine) register(name string, s sql.Statement) (QueryInfo, error) {
	// `explain <stmt>` and `explain analyze <query>` are informational:
	// their rendered text comes back in QueryInfo.Text, nothing registers.
	if ex, ok := s.(*sql.ExplainStmt); ok {
		var text string
		var err error
		if ex.Analyze {
			text, err = e.ExplainAnalyze(ex.Query)
		} else {
			text, err = e.explainStatement(ex.Stmt)
		}
		return QueryInfo{Name: name, Text: text}, err
	}
	// `set strategy = '…'` and `set parallelism = N` are engine pragmas,
	// not session variables.
	if set, ok := s.(*sql.SetStmt); ok {
		switch {
		case strings.EqualFold(set.Name, "strategy"):
			return QueryInfo{Name: name}, e.execStrategyPragma(set)
		case strings.EqualFold(set.Name, "parallelism"):
			return QueryInfo{Name: name}, e.execParallelismPragma(set)
		}
		if set.On != "" {
			return QueryInfo{}, fmt.Errorf("datacell: 'on %s' applies only to the parallelism pragma", set.On)
		}
	}
	if !isContinuousStmt(s) {
		if _, err := plan.Compile(e.cat, s, name); err != nil {
			return QueryInfo{}, err
		}
		return QueryInfo{Name: name}, nil
	}
	// Phase 1: analysis. A query consuming exactly one stream becomes a
	// member of that stream's query group, wired (and rewired) under the
	// engine strategy; everything else takes the standalone path.
	if _, isWith := s.(*sql.WithBlock); !isWith {
		a, err := plan.Analyze(e.cat, s, name)
		if err != nil {
			return QueryInfo{}, err
		}
		if a.Scan != nil {
			return e.registerScan(name, a)
		}
	}
	return e.registerStandalone(name, s)
}

// execStrategyPragma applies `set strategy = '<name>'`.
func (e *Engine) execStrategyPragma(set *sql.SetStmt) error {
	if set.On != "" {
		return fmt.Errorf("datacell: the strategy pragma is engine-wide ('on %s' not supported)", set.On)
	}
	c, ok := set.Value.(*expr.Const)
	if !ok || c.Val.Kind != vector.Str {
		return fmt.Errorf("datacell: set strategy expects a string literal ('separate', 'shared' or 'partial')")
	}
	s, err := ParseStrategy(c.Val.S)
	if err != nil {
		return err
	}
	return e.SetStrategy(s)
}

// execParallelismPragma applies `set parallelism = N | auto [on stream]`
// and `set parallelism = default on stream`. N pins the count (engine-
// wide or for one stream), auto hands it to the load controller, and
// default clears a per-stream override.
func (e *Engine) execParallelismPragma(set *sql.SetStmt) error {
	word := ""
	n, isInt := 0, false
	switch v := set.Value.(type) {
	case *expr.Const:
		switch v.Val.Kind {
		case vector.Int:
			n, isInt = int(v.Val.I), true
		case vector.Str:
			word = strings.ToLower(v.Val.S)
		}
	case *expr.Col:
		// Bare identifiers (`auto`, `default`) parse as column refs.
		word = strings.ToLower(v.Name)
	}
	switch {
	case isInt:
		if set.On != "" {
			return e.SetStreamParallelism(set.On, n)
		}
		return e.SetParallelism(n)
	case word == "auto":
		if set.On != "" {
			return e.SetStreamParallelismAuto(set.On)
		}
		return e.SetParallelismAuto()
	case word == "default":
		if set.On == "" {
			return fmt.Errorf("datacell: set parallelism = default needs 'on <stream>' (it clears a per-stream override)")
		}
		return e.ClearStreamParallelism(set.On)
	}
	return fmt.Errorf("datacell: set parallelism expects an integer literal, 'auto' or 'default'")
}

// registerScan adds a shareable query to its stream's group (phase 2, the
// group wiring path).
func (e *Engine) registerScan(name string, a *plan.Analysis) (QueryInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	g, err := e.addScanLocked(name, a)
	if err != nil {
		return QueryInfo{}, err
	}
	if err := e.rewireLocked(g); err != nil {
		return QueryInfo{}, err
	}
	return QueryInfo{Name: name, Continuous: true}, nil
}

// addScanLocked records a shareable query as a member of its stream's
// group without rewiring. Caller holds e.mu and must rewire the returned
// group before releasing it.
func (e *Engine) addScanLocked(name string, a *plan.Analysis) (*queryGroup, error) {
	if _, dup := e.queries[name]; dup {
		return nil, fmt.Errorf("datacell: query %q already registered", name)
	}
	g, err := e.groupLocked(a.Scan.Stream)
	if err != nil {
		return nil, err
	}
	m := &groupMember{name: name, scan: a.Scan}
	g.scans = append(g.scans, m)
	// The out basket may be a revived leftover of a removed query with the
	// same name, closed when that query's subscription emitter stopped.
	a.Out.Reopen()
	e.queries[name] = &queryRec{name: name, out: a.Out, member: m}
	e.queryRegisteredLocked(name, "group member on stream "+a.Scan.Stream)
	return g, nil
}

// NamedQuery pairs a query name with its SQL source for bulk
// registration.
type NamedQuery struct {
	Name string
	SQL  string
}

// RegisterQueries registers a set of continuous queries at once. Shareable
// queries are collected first and every affected stream group is rewired
// a single time, which matters when installing hundreds of queries over
// one stream: a rewire is linear in the group size, so one-by-one
// registration is quadratic. Non-shareable statements fall back to the
// one-by-one path. On error, queries registered so far stay registered.
func (e *Engine) RegisterQueries(qs []NamedQuery) error {
	type analyzed struct {
		name string
		a    *plan.Analysis
	}
	var scans []analyzed
	for _, nq := range qs {
		s, err := sql.ParseOne(nq.SQL)
		if err != nil {
			return fmt.Errorf("datacell: query %q: %w", nq.Name, err)
		}
		_, isWith := s.(*sql.WithBlock)
		if !isContinuousStmt(s) || isWith {
			if _, err := e.register(nq.Name, s); err != nil {
				return err
			}
			continue
		}
		a, err := plan.Analyze(e.cat, s, nq.Name)
		if err != nil {
			return err
		}
		if a.Scan == nil {
			if _, err := e.registerStandalone(nq.Name, s); err != nil {
				return err
			}
			continue
		}
		scans = append(scans, analyzed{name: nq.Name, a: a})
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	dirty := map[*queryGroup]bool{}
	var firstErr error
	for _, sc := range scans {
		g, err := e.addScanLocked(sc.name, sc.a)
		if err != nil {
			firstErr = err
			break
		}
		dirty[g] = true
	}
	// Rewire even on error: members added before the failure are
	// registered and must be executing, not sitting in an unwired group.
	for g := range dirty {
		if err := e.rewireLocked(g); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// registerStandalone compiles a multi-stream query or with-block to its
// own factory (phase 2, the standalone wiring path). Stream consumption
// is routed through a private replica per stream, attached as a tap to
// each stream's group so the replicating wiring keeps feeding it.
func (e *Engine) registerStandalone(name string, s sql.Statement) (QueryInfo, error) {
	privates := map[string]*basket.Basket{}
	if err := e.rewriteToPrivate(name, s, privates); err != nil {
		return QueryInfo{}, err
	}
	c, err := plan.Compile(e.cat, s, name)
	if err != nil {
		return QueryInfo{}, err
	}
	if c.Factory == nil {
		return QueryInfo{Name: name}, nil
	}
	e.mu.Lock()
	if _, dup := e.queries[name]; dup {
		e.mu.Unlock()
		return QueryInfo{}, fmt.Errorf("datacell: query %q already registered", name)
	}
	c.Out.Reopen() // may be a closed leftover of a removed same-name query
	e.queries[name] = &queryRec{name: name, out: c.Out, compiled: c, taps: privates}
	e.queryRegisteredLocked(name, "standalone factory")
	// The compiled factory's first input is the private replica its
	// basket expression scans; its sys_ts column carries the receptor
	// arrival stamp the latency histogram measures against.
	if ins := c.Factory.Inputs(); len(ins) > 0 {
		c.Factory.SetLatency(e.qlat[name], ins[0], e.cat.Now)
	}
	for streamName, priv := range privates {
		g, gerr := e.groupLocked(streamName)
		if gerr != nil {
			e.mu.Unlock()
			return QueryInfo{}, gerr
		}
		g.taps = append(g.taps, priv)
		if gerr := e.rewireLocked(g); gerr != nil {
			e.mu.Unlock()
			return QueryInfo{}, gerr
		}
	}
	e.mu.Unlock()
	if err := e.sch.Register(c.Factory); err != nil {
		return QueryInfo{}, err
	}
	return QueryInfo{Name: name, Continuous: true}, nil
}

func isContinuousStmt(s sql.Statement) bool {
	switch t := s.(type) {
	case *sql.SelectStmt:
		return t.IsContinuous()
	case *sql.InsertStmt:
		return t.Query.IsContinuous()
	case *sql.WithBlock:
		return true
	}
	return false
}

// rewriteToPrivate renames every stream reference inside the statement's
// basket expressions to a fresh private basket owned by this query,
// creating the private basket with the stream's schema.
func (e *Engine) rewriteToPrivate(qname string, s sql.Statement, privates map[string]*basket.Basket) error {
	var walkSel func(sel *sql.SelectStmt, inBasket bool) error
	walkSel = func(sel *sql.SelectStmt, inBasket bool) error {
		for i := range sel.From {
			tr := &sel.From[i]
			switch {
			case tr.Basket != nil:
				if err := walkSel(tr.Basket, true); err != nil {
					return err
				}
			case tr.Sub != nil:
				if err := walkSel(tr.Sub, inBasket); err != nil {
					return err
				}
			default:
				if !inBasket {
					continue
				}
				src := e.cat.Basket(tr.Name)
				if src == nil || e.cat.KindOf(tr.Name) != plan.KindBasket {
					continue
				}
				privName := tr.Name + "$" + strings.ToLower(qname)
				if e.cat.Basket(privName) == nil {
					names, types := src.UserSchema()
					if _, err := e.cat.CreateBasket(privName, names, types, plan.KindBasket); err != nil {
						return err
					}
				}
				privates[tr.Name] = e.cat.Basket(privName)
				if tr.Alias == tr.Name {
					tr.Alias = tr.Name // keep original alias for column refs
				}
				tr.Name = privName
			}
		}
		return nil
	}
	switch t := s.(type) {
	case *sql.SelectStmt:
		return walkSel(t, false)
	case *sql.InsertStmt:
		return walkSel(t.Query, false)
	case *sql.WithBlock:
		return walkSel(t.Basket, true)
	}
	return nil
}

// Explain returns a human-readable description of how a statement would
// be compiled: firing inputs with thresholds, locked side inputs, the
// operator pipeline, and — for continuous queries — the multi-query
// wiring it would receive under the engine's current strategy. Nothing is
// created or registered.
func (e *Engine) Explain(src string) (string, error) {
	s, err := sql.ParseOne(src)
	if err != nil {
		return "", err
	}
	return e.explainStatement(s)
}

// explainStatement renders the compile/wiring description of one parsed
// statement — the body of Explain, shared with the SQL-level `explain`.
func (e *Engine) explainStatement(s sql.Statement) (string, error) {
	base, err := plan.Explain(e.cat, s, "query")
	if err != nil {
		return "", err
	}
	if !isContinuousStmt(s) {
		return base, nil
	}
	var b strings.Builder
	b.WriteString(base)
	if streamName, ok := plan.ShareableStream(e.cat, s); ok {
		verdict, _ := plan.Partitionability(e.cat, s)
		e.mu.Lock()
		strat := e.strategy
		par := e.parallelism
		members := 0
		forced := false
		pinned := false
		ingestShards := 0
		ingestPath := ""
		auto := e.autoParallel
		autoP := 1
		var rewires int64
		lastReason := ""
		if g := e.groups[streamName]; g != nil {
			members = len(g.scans)
			forced = len(g.taps) > 0
			auto = e.groupAutoLocked(g)
			rewires = g.rewires
			lastReason = g.lastRewireReason
			par = e.groupParallelismLocked(g)
			autoP = par
			for _, l := range g.listeners {
				ingestShards += len(l.Addrs())
			}
			if ingestShards > 0 {
				ingestPath = g.target().Peek().Describe()
			}
			if strat != StrategySeparate && !forced && verdict.Mode != plan.PartNone && members > 0 {
				// The shared and partial wirings split the stream once for
				// the whole group, so the installed members constrain the
				// routing this query would actually receive.
				combined := plan.CombineVerdicts(g.partitioning(), verdict)
				pinned = combined.Mode == plan.PartNone
				verdict = combined
			}
		} else if auto {
			par, autoP = 1, 1
		}
		e.mu.Unlock()
		fmt.Fprintf(&b, "wiring: query group on stream %s, strategy %s (%d members installed)\n",
			streamName, strat, members)
		if forced && strat != StrategySeparate {
			b.WriteString("wiring: group forced to separate baskets (stream has standalone consumers)\n")
		}
		switch {
		case pinned:
			b.WriteString("wiring: partitioning none (group members pin the stream to one partition)\n")
		case verdict.Mode == plan.PartNone:
			b.WriteString("wiring: partitioning none (plan must see the whole stream)\n")
		case par <= 1:
			fmt.Fprintf(&b, "wiring: partitioning %s available (parallelism 1, single partition)\n",
				verdict.Describe())
		default:
			merge := "merge emitter"
			if plan.TwoPhase(e.cat, s) {
				merge = "combining merge emitter"
			}
			fmt.Fprintf(&b, "wiring: partitioning %s across %d partitions (splitter, %d clones, %s)\n",
				verdict.Describe(), par, par, merge)
			if verdict.Mode == plan.PartRange {
				fmt.Fprintf(&b, "wiring: catch-all partition prunes tuples outside %s from every clone\n",
					verdict.Set())
			}
		}
		if auto {
			fmt.Fprintf(&b, "wiring: parallelism auto (controller target P=%d", autoP)
			if pinned || verdict.Mode == plan.PartNone {
				b.WriteString("; verdict clamps the group to 1, controller refuses scale-up")
			}
			fmt.Fprintf(&b, "; %d rewires", rewires)
			if lastReason != "" {
				fmt.Fprintf(&b, "; last: %s", lastReason)
			}
			b.WriteString(")\n")
		}
		if ingestShards > 0 {
			fmt.Fprintf(&b, "ingest: %d receptor shard(s), delivering to %s\n", ingestShards, ingestPath)
		}
	} else {
		b.WriteString("wiring: standalone factory over private stream replicas (not shareable)\n")
	}
	return b.String(), nil
}

// QueryStats reports the activity counters of one registered continuous
// query, including the stage-timing breakdown explain analyze renders:
// Busy is the fire stage (factory body time), MergeWait/MergeWaits the
// two-phase merge barrier, EmitBusy the emitter's delivery time, and the
// Lat* fields summarise the live ingest-to-emit latency histogram (zero
// until a firing has consumed a receptor-stamped tuple).
type QueryStats struct {
	Name    string
	Fires   int64 // factory activations
	Errors  int64 // activations that returned an error
	LastErr error
	OutRows int64 // tuples appended to the output basket over time
	Pending int   // tuples currently waiting in the output basket

	Busy       time.Duration // cumulative factory body time across current factories
	MergeWaits int64         // completed merge-barrier waits (two-phase wirings)
	MergeWait  time.Duration // cumulative time the merge barrier held results back
	EmitBusy   time.Duration // cumulative emitter delivery time (0 without subscriptions)

	LatCount int64 // ingest-to-emit latency samples recorded
	LatP50   time.Duration
	LatP99   time.Duration
	LatP999  time.Duration
	LatMax   time.Duration
}

// Stats returns activity counters for every registered continuous query,
// sorted by name. Fires/Errors sum over the query's current factories
// (partition clones under partitioned wiring); a group rewire (strategy or
// parallelism switch, membership change) starts fresh factories, so those
// counters restart while OutRows keeps accumulating.
func (e *Engine) Stats() []QueryStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statsLocked()
}

// statsLocked computes per-query activity counters. Caller holds e.mu
// (factory pointers must be read under it: group rewires replace a
// member's factories concurrently; basket locks nest under e.mu).
func (e *Engine) statsLocked() []QueryStats {
	out := make([]QueryStats, 0, len(e.queries))
	for n, r := range e.queries {
		st := r.out.Stats()
		q := QueryStats{Name: n, OutRows: st.Appended, Pending: r.out.Len()}
		for _, f := range r.factories() {
			if f == nil {
				continue
			}
			q.Fires += f.Fires()
			q.Errors += f.Errors()
			q.Busy += f.Busy()
			if err := f.LastError(); err != nil {
				q.LastErr = err
			}
		}
		if r.member != nil && r.member.merge != nil {
			if b := r.member.merge.Barrier(); b != nil {
				q.MergeWaits = b.Waits()
				q.MergeWait = b.WaitTime()
			}
		}
		if qe := e.subs[n]; qe != nil {
			q.EmitBusy = qe.em.Busy()
		}
		if h := e.qlat[n]; h != nil {
			q.LatCount = h.Count()
			if q.LatCount > 0 {
				q.LatP50 = h.Quantile(0.5)
				q.LatP99 = h.Quantile(0.99)
				q.LatP999 = h.Quantile(0.999)
				q.LatMax = h.Max()
			}
		}
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RemoveQuery unregisters a continuous query: its factory stops firing,
// its stream's query group rewires without it, and its subscriptions end
// (their Emit callbacks are never invoked again once the call returns and
// the in-flight delivery, if any, completes).
func (e *Engine) RemoveQuery(name string) error {
	e.mu.Lock()
	rec, ok := e.queries[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("datacell: unknown query %q", name)
	}
	delete(e.queries, name)
	delete(e.qlat, name)
	e.ev.removes.Inc()
	e.trace.Add(obs.Event{Subsystem: "engine", Kind: "remove", Name: name,
		Reason: "RemoveQuery", Time: e.cat.Now()})
	qe := e.dropQueryEmitterLocked(name)
	var err error
	if rec.member != nil {
		for _, g := range e.groups {
			for i, m := range g.scans {
				if m != rec.member {
					continue
				}
				g.scans = append(g.scans[:i], g.scans[i+1:]...)
				if e2 := e.rewireLocked(g); err == nil {
					err = e2
				}
				break
			}
		}
	}
	for streamName, priv := range rec.taps {
		g := e.groups[streamName]
		if g == nil {
			continue
		}
		for i, t := range g.taps {
			if t == priv {
				g.taps = append(g.taps[:i], g.taps[i+1:]...)
				break
			}
		}
		if e2 := e.rewireLocked(g); err == nil {
			err = e2
		}
	}
	e.mu.Unlock()
	if qe != nil {
		qe.cancelAll()
		qe.em.Stop()
	}
	if rec.compiled != nil && rec.compiled.Factory != nil {
		e.sch.Unregister(rec.compiled.Factory)
		rec.compiled.Factory.WaitIdle()
	}
	return err
}

// Query runs a one-time query immediately and returns its rows.
func (e *Engine) Query(src string) (Table, error) {
	s, err := sql.ParseOne(src)
	if err != nil {
		return Table{}, err
	}
	sel, ok := s.(*sql.SelectStmt)
	if !ok {
		return Table{}, fmt.Errorf("datacell: Query expects a select statement")
	}
	if sel.IsContinuous() {
		return Table{}, fmt.Errorf("datacell: Query is for one-time queries; use RegisterQuery for continuous ones")
	}
	rel, err := plan.ExecuteQuery(e.cat, sel)
	if err != nil {
		return Table{}, err
	}
	return tableOf(rel), nil
}

// Out returns the output basket of a registered continuous query.
func (e *Engine) Out(query string) (*basket.Basket, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.queries[query]
	if !ok {
		return nil, fmt.Errorf("datacell: unknown query %q", query)
	}
	return c.out, nil
}

// ingestPool recycles the staging relations Append converts rows into;
// the basket copies the tuples on ingest, so the staging can go straight
// back to the pool.
var ingestPool = sync.Pool{New: func() any { return &bat.Relation{} }}

// Append feeds rows into a stream basket. Values are converted column
// by column into a pooled staging relation — no per-row boxing — so a
// steady-state Append costs a handful of allocations regardless of the
// batch size.
func (e *Engine) Append(streamName string, rows ...Row) error {
	b := e.cat.Basket(streamName)
	if b == nil {
		return fmt.Errorf("datacell: unknown stream %q", streamName)
	}
	names, types := b.UserSchema()
	rel := ingestPool.Get().(*bat.Relation)
	defer ingestPool.Put(rel)
	rel.Reshape(names, types)
	for _, r := range rows {
		if len(r) != len(types) {
			return fmt.Errorf("datacell: row has %d values, want %d", len(r), len(types))
		}
		for i, x := range r {
			v, err := toValue(x, types[i])
			if err != nil {
				return fmt.Errorf("datacell: column %d: %w", i, err)
			}
			rel.Col(i).Append(v)
		}
	}
	_, err := b.Append(rel)
	return err
}

// IngestOptions tunes a sharded ingest listener group (ListenIngest).
// The zero value means one shard, 256-tuple decode batches and default
// backpressure watermarks.
type IngestOptions struct {
	// Shards is the number of listener shards. With a wildcard port every
	// shard binds its own socket; with a fixed port the shards share the
	// first socket as parallel accept loops.
	Shards int
	// BatchSize bounds how many decoded tuples accumulate before one
	// append into the destination baskets while more input is already
	// buffered on the connection; a sender pause delivers the pending
	// batch immediately.
	BatchSize int
	// HighWater is the destination occupancy (resident tuples) at which a
	// receptor stops reading its socket until the factories drain below
	// LowWater. 0 means 65536; negative disables backpressure.
	HighWater int
	// LowWater is the occupancy below which a stalled receptor resumes
	// (default HighWater/2).
	LowWater int
	// SplitterPath forces deliveries through the stream basket and the
	// splitter transition even when the stream's wiring is partitioned —
	// the legacy ingest path, kept as an escape hatch and as the baseline
	// of differential tests.
	SplitterPath bool
	// IdleTimeout closes a connection whose client sends nothing for this
	// long, so a dead sender stops pinning a shard goroutine. 0 disables
	// the deadline (the default).
	IdleTimeout time.Duration
	// NoWAL exempts this listener from the engine's write-ahead log even
	// when OpenWAL is active (e.g. a throwaway diagnostic tap).
	NoWAL bool
}

// IngestStats is one receptor shard's activity snapshot.
type IngestStats struct {
	Addr      string        // listen address of the shard
	Path      string        // where this shard's listener delivers ("route-at-ingest …" or "stream basket")
	Conns     int64         // connections accepted over the shard's lifetime
	Active    int64         // connections currently open
	TextConns int64         // connections that sniffed as textual
	Frames    int64         // binary frames decoded
	Tuples    int64         // tuples delivered into the kernel
	Invalid   int64         // malformed lines / rejected frames
	TimedOut  int64         // connections closed by the idle read deadline
	WALErrors int64         // batches rejected because the WAL append failed
	Stalls    int64         // backpressure stalls
	StallTime time.Duration // total time spent stalled
	RouteTime time.Duration // total time spent routing batches into the kernel
}

// IngestListener is a running sharded ingest group attached to one
// stream by ListenIngest.
type IngestListener struct {
	eng    *Engine
	stream string
	g      *ingest.Group
	tgt    *ingest.SwitchTarget // the target this listener delivers through
}

// Stream returns the stream the listener feeds.
func (l *IngestListener) Stream() string { return l.stream }

// Addrs returns the bound address of every shard.
func (l *IngestListener) Addrs() []string { return l.g.Addrs() }

// Addr returns the first shard's bound address.
func (l *IngestListener) Addr() string { return l.g.Addrs()[0] }

// Path describes where this listener's batches currently land. A
// SplitterPath listener reports the stream basket even when the
// group-routed listeners deliver straight to partitions.
func (l *IngestListener) Path() string { return l.tgt.Peek().Describe() }

// Stats snapshots every shard's ingest counters.
func (l *IngestListener) Stats() []IngestStats {
	src := l.g.Stats()
	path := l.Path()
	out := make([]IngestStats, len(src))
	for i, s := range src {
		out[i] = IngestStats{
			Addr:      s.Addr,
			Path:      path,
			Conns:     s.Conns,
			Active:    s.Active,
			TextConns: s.TextConns,
			Frames:    s.Frames,
			Tuples:    s.Tuples,
			Invalid:   s.Invalid,
			TimedOut:  s.TimedOut,
			WALErrors: s.WALErrors,
			Stalls:    s.Stalls,
			StallTime: s.StallTime,
			RouteTime: s.RouteTime,
		}
	}
	return out
}

// Close stops the listener's shards and connections and detaches it
// from the stream's group, so Groups()/Explain stop reporting it.
// Idempotent.
func (l *IngestListener) Close() {
	l.eng.mu.Lock()
	if g := l.eng.groups[l.stream]; g != nil {
		for i, o := range g.listeners {
			if o == l {
				g.listeners = append(g.listeners[:i], g.listeners[i+1:]...)
				break
			}
		}
	}
	l.eng.mu.Unlock()
	l.g.Close()
}

// ListenIngest attaches a sharded ingest group to a stream: every
// accepted connection is sniffed for the binary batch wire protocol
// (falling back to pipe-separated textual tuples) and decoded
// independently, and decoded batches are routed by the stream's current
// wiring — straight into partition baskets when the wiring is
// partitioned group-wide, into the stream basket otherwise. Receptors
// push back on their sockets when destination occupancy passes the
// high-water mark.
func (e *Engine) ListenIngest(streamName, addr string, o IngestOptions) (*IngestListener, error) {
	b := e.cat.Basket(streamName)
	if b == nil {
		return nil, fmt.Errorf("datacell: unknown stream %q", streamName)
	}
	e.mu.Lock()
	g, err := e.groupLocked(streamName)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	tgt := g.target()
	if o.SplitterPath {
		tgt = ingest.NewSwitchTarget(ingest.BasketSink(b))
	}
	// Write-ahead tee: when the engine has a WAL open, every accepted
	// batch is logged to the stream's log before it is routed.
	var blog ingest.BatchLog
	if e.wal != nil && !o.NoWAL {
		lg, _, werr := e.walLogForLocked(streamName)
		if werr != nil {
			e.mu.Unlock()
			return nil, werr
		}
		blog = lg
	}
	e.mu.Unlock()
	names, types := b.UserSchema()
	ig, err := ingest.Listen(streamName, addr, names, types, tgt, ingest.Options{
		Shards:      o.Shards,
		BatchSize:   o.BatchSize,
		HighWater:   o.HighWater,
		LowWater:    o.LowWater,
		WAL:         blog,
		IdleTimeout: o.IdleTimeout,
	})
	if err != nil {
		return nil, err
	}
	l := &IngestListener{eng: e, stream: streamName, g: ig, tgt: tgt}
	e.mu.Lock()
	g.listeners = append(g.listeners, l)
	e.mu.Unlock()
	return l, nil
}

// ListenTCP attaches an ingest listener to a stream: every connection
// received on the address streams tuples — binary frames or
// pipe-separated lines, auto-detected — into the stream. It returns the
// bound address. It is ListenIngest with a single shard.
func (e *Engine) ListenTCP(streamName, addr string) (string, error) {
	l, err := e.ListenIngest(streamName, addr, IngestOptions{})
	if err != nil {
		return "", err
	}
	return l.Addr(), nil
}

// ServeTCP attaches a TCP emitter to a continuous query's results. Every
// connected client receives all subsequent result tuples, one line each.
func (e *Engine) ServeTCP(query, addr string) (string, error) {
	out, err := e.Out(query)
	if err != nil {
		return "", err
	}
	te, err := stream.ServeTCP(addr, stream.NewEmitter(out))
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	e.tcpOut = append(e.tcpOut, te)
	started := e.started
	e.mu.Unlock()
	if started {
		te.Emitter.Start()
	}
	return te.Addr(), nil
}

// Start launches the scheduler and all subscribed emitters. An engine
// with an open WAL recovers first: any un-replayed log tail is driven
// through the router before the first factory fires. An engine whose
// construction Options failed (Err != nil) refuses to start.
func (e *Engine) Start() error {
	e.mu.Lock()
	walOpen := e.wal != nil
	initErr := e.initErr
	e.mu.Unlock()
	if initErr != nil {
		return fmt.Errorf("datacell: engine misconstructed: %w", initErr)
	}
	if walOpen {
		if _, err := e.Recover(); err != nil {
			return err
		}
	}
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return fmt.Errorf("datacell: engine already started")
	}
	e.started = true
	qes := e.subEmittersLocked()
	touts := append([]*stream.TCPEmitter(nil), e.tcpOut...)
	stop, done := make(chan struct{}), make(chan struct{})
	e.adaptStop, e.adaptDone = stop, done
	e.mu.Unlock()
	if err := e.sch.Start(); err != nil {
		return err
	}
	// The load metronome samples every group each tick; controllers act
	// only on groups under `set parallelism = auto`, but the windowed
	// rate fields of GroupInfo update for all.
	go e.adaptLoop(stop, done)
	for _, qe := range qes {
		qe.em.Start()
	}
	for _, t := range touts {
		t.Emitter.Start()
	}
	return nil
}

// Drain blocks until the factory network is quiescent or the timeout
// elapses, reporting whether it drained. Useful after feeding a known
// amount of input. A successful drain checkpoints the WAL: everything
// logged so far has been consumed by the kernel, so recovery can skip it.
func (e *Engine) Drain(timeout time.Duration) bool {
	drained := e.sch.WaitQuiescent(timeout)
	if drained {
		e.checkpointWAL(false)
	}
	return drained
}

// RunSync fires enabled factories on the calling goroutine until the
// network quiesces. It is the synchronous alternative to Start for batch
// feeding and benchmarks.
func (e *Engine) RunSync() error {
	_, err := e.sch.RunUntilQuiescent(0)
	return err
}

// Stop shuts down the scheduler, ingest listeners, TCP endpoints and
// emitters. The ingest periphery closes first (while the scheduler still
// drains, so a receptor blocked mid-delivery can finish), then the
// kernel, then the result side.
func (e *Engine) Stop() {
	e.mu.Lock()
	started := e.started
	e.started = false
	var ins []*IngestListener
	for _, g := range e.groups {
		ins = append(ins, g.listeners...)
	}
	touts := append([]*stream.TCPEmitter(nil), e.tcpOut...)
	qes := e.subEmittersLocked()
	stop, done := e.adaptStop, e.adaptDone
	e.adaptStop, e.adaptDone = nil, nil
	admin := e.admin
	e.admin = nil
	e.mu.Unlock()
	if admin != nil {
		admin.Close()
	}
	// The sampler goes first: a controller-driven rewire quiesces the
	// ingest periphery, and closing listeners concurrently is fine, but
	// no new rewires should start once shutdown is underway.
	if stop != nil {
		close(stop)
		<-done
	}
	for _, l := range ins {
		l.Close()
	}
	if started {
		e.sch.Stop()
	}
	// Clean shutdown checkpoints and closes the stream logs (after the
	// listeners, so no delivery can tee into a closed log). A crashed or
	// failed log refuses the checkpoint, preserving its replayable tail.
	e.checkpointWAL(true)
	for _, t := range touts {
		t.Close()
	}
	for _, qe := range qes {
		qe.em.Stop()
	}
}

// tableOf converts an internal relation (user columns only; internal
// columns are dropped) into a public Table.
func tableOf(rel *bat.Relation) Table {
	var cols []string
	var idx []int
	for i, n := range rel.Names() {
		if n == basket.TimestampCol || strings.HasPrefix(n, "__") {
			continue
		}
		cols = append(cols, n)
		idx = append(idx, i)
	}
	t := Table{Cols: cols}
	for r := 0; r < rel.Len(); r++ {
		row := make(Row, len(idx))
		for j, i := range idx {
			row[j] = goValue(rel.Col(i).Get(r))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func goValue(v vector.Value) any {
	switch v.Kind {
	case vector.Int:
		return v.I
	case vector.Float:
		return v.F
	case vector.Bool:
		return v.B
	case vector.Str:
		return v.S
	case vector.Timestamp:
		return time.UnixMicro(v.I)
	}
	return nil
}

func toValue(x any, t vector.Type) (vector.Value, error) {
	switch v := x.(type) {
	case int:
		return numericAs(int64(v), t)
	case int32:
		return numericAs(int64(v), t)
	case int64:
		return numericAs(v, t)
	case float64:
		if t == vector.Float {
			return vector.NewFloat(v), nil
		}
		return numericAs(int64(v), t)
	case bool:
		if t != vector.Bool {
			return vector.Value{}, fmt.Errorf("bool value for %s column", t)
		}
		return vector.NewBool(v), nil
	case string:
		if t != vector.Str {
			return vector.ParseValue(t, v)
		}
		return vector.NewStr(v), nil
	case time.Time:
		if t != vector.Timestamp {
			return vector.Value{}, fmt.Errorf("time value for %s column", t)
		}
		return vector.NewTimestamp(v), nil
	}
	return vector.Value{}, fmt.Errorf("unsupported value type %T", x)
}

func numericAs(i int64, t vector.Type) (vector.Value, error) {
	switch t {
	case vector.Int:
		return vector.NewInt(i), nil
	case vector.Timestamp:
		return vector.NewTimestampMicros(i), nil
	case vector.Float:
		return vector.NewFloat(float64(i)), nil
	}
	return vector.Value{}, fmt.Errorf("numeric value for %s column", t)
}
