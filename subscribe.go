package datacell

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/bat"
	"datacell/internal/stream"
)

// Emit is one delivered result batch of a continuous query together with
// its delivery metadata: the producing query, the batch's position in the
// subscription's delivery order, and the engine-clock time the emitter
// picked the batch up. Senders that stamp a wall-clock timestamp into
// their tuples can subtract it from EmitTime to measure ingest-to-emit
// latency (cmd/datacellbench does exactly that).
type Emit struct {
	// Query is the continuous query that produced the batch.
	Query string
	// Table carries the result rows. It is shared by every subscription of
	// the query and must not be mutated by the callback.
	Table Table
	// Seq numbers the batches one subscription receives, starting at 1.
	// Gaps never occur; a new subscription starts its own numbering.
	Seq int64
	// EmitTime is the engine-clock time (time.Now unless WithClock /
	// SetClock installed a simulated clock) at which the emitter thread
	// picked the batch up from the kernel's result basket.
	EmitTime time.Time
}

// SubscribeOptions configure one subscription (SubscribeQuery).
type SubscribeOptions struct {
	// OnEmit receives every result batch with metadata, invoked on the
	// query's emitter thread. Required. The callback must not retain
	// Emit.Table past its return and should be quick: all subscriptions of
	// one query share the emitter thread.
	OnEmit func(Emit)
}

// Subscription is one attached consumer of a continuous query's results,
// created by SubscribeQuery. Unlike the deprecated Subscribe seam it can
// be detached without removing the query: Cancel removes the consumer and
// leaves the query (and its other subscriptions) running.
type Subscription struct {
	query     string
	qe        *queryEmitter
	fn        func(Emit)
	seq       atomic.Int64
	cancelled atomic.Bool
}

// Query returns the name of the subscribed query.
func (s *Subscription) Query() string { return s.query }

// Emits returns how many batches the subscription has been delivered.
func (s *Subscription) Emits() int64 { return s.seq.Load() }

// Cancel detaches the subscription: no further batches are delivered and
// the query keeps running for its other consumers. One delivery already in
// flight on the emitter thread may still arrive concurrently with Cancel;
// after that the callback is never invoked again. Idempotent, and safe to
// call from within the subscription's own OnEmit callback.
func (s *Subscription) Cancel() {
	if s.cancelled.Swap(true) {
		return
	}
	s.qe.remove(s)
}

// queryEmitter fans one query's emitter thread out to its subscriptions:
// one stream.Emitter drains the query's output basket, and every drained
// batch is delivered — with one shared Table and EmitTime, and a
// per-subscription Seq — to each attached subscription. The engine keeps
// exactly one per subscribed query, so attaching and detaching consumers
// never multiplies emitter threads (the leak the deprecated Subscribe
// had: every call grew an emitter that competed for batches and could
// never be removed).
type queryEmitter struct {
	eng   *Engine
	query string
	em    *stream.Emitter

	mu   sync.Mutex
	subs []*Subscription
}

func (qe *queryEmitter) add(s *Subscription) {
	qe.mu.Lock()
	qe.subs = append(qe.subs, s)
	qe.mu.Unlock()
}

func (qe *queryEmitter) remove(s *Subscription) {
	qe.mu.Lock()
	for i, o := range qe.subs {
		if o == s {
			qe.subs = append(qe.subs[:i], qe.subs[i+1:]...)
			break
		}
	}
	qe.mu.Unlock()
}

// cancelAll detaches every subscription (RemoveQuery, engine teardown).
func (qe *queryEmitter) cancelAll() {
	qe.mu.Lock()
	subs := qe.subs
	qe.subs = nil
	qe.mu.Unlock()
	for _, s := range subs {
		s.cancelled.Store(true)
	}
}

// dispatch delivers one drained batch to every live subscription. It runs
// on the emitter thread; the subscriber list is snapshotted so Cancel
// never blocks behind a slow callback.
func (qe *queryEmitter) dispatch(rel *bat.Relation) {
	qe.mu.Lock()
	subs := append([]*Subscription(nil), qe.subs...)
	qe.mu.Unlock()
	if len(subs) == 0 {
		return
	}
	t := tableOf(rel)
	now := qe.eng.cat.Now()
	for _, s := range subs {
		if s.cancelled.Load() {
			continue
		}
		s.fn(Emit{Query: qe.query, Table: t, Seq: s.seq.Add(1), EmitTime: now})
	}
}

// SubscribeQuery attaches a consumer to the named continuous query's
// results and returns its Subscription. Every result batch is delivered to
// opts.OnEmit with metadata (Emit); all subscriptions of one query share a
// single emitter thread and each receives every batch. Subscriptions can
// be created before or after Start, and detached at any time with
// Subscription.Cancel. They end automatically when the query is removed
// (RemoveQuery) or the engine stops.
func (e *Engine) SubscribeQuery(query string, opts SubscribeOptions) (*Subscription, error) {
	if opts.OnEmit == nil {
		return nil, fmt.Errorf("datacell: SubscribeQuery needs an OnEmit callback")
	}
	out, err := e.Out(query)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	qe := e.subs[query]
	if qe == nil {
		qe = &queryEmitter{eng: e, query: query, em: stream.NewEmitter(out)}
		qe.em.Subscribe(qe.dispatch)
		if e.subs == nil {
			e.subs = map[string]*queryEmitter{}
		}
		e.subs[query] = qe
	}
	sub := &Subscription{query: query, qe: qe, fn: opts.OnEmit}
	qe.add(sub)
	started := e.started
	e.mu.Unlock()
	if started {
		qe.em.Start() // idempotent: a second Start on a running emitter is a no-op
	}
	return sub, nil
}

// Subscribe delivers every result batch of the named continuous query to
// fn on the emitter thread.
//
// Deprecated: Use SubscribeQuery, which returns a cancellable
// Subscription and delivers Emit metadata (Seq, EmitTime) alongside the
// Table. Subscribe keeps old call sites working but offers no way to
// detach the consumer without removing the query.
func (e *Engine) Subscribe(query string, fn func(t Table)) error {
	_, err := e.SubscribeQuery(query, SubscribeOptions{OnEmit: func(em Emit) { fn(em.Table) }})
	return err
}

// subscriptionEmitters snapshots the per-query emitters. Caller holds e.mu.
func (e *Engine) subEmittersLocked() []*queryEmitter {
	out := make([]*queryEmitter, 0, len(e.subs))
	for _, qe := range e.subs {
		out = append(out, qe)
	}
	return out
}

// subscriptionsLocked counts live subscriptions across every query.
// Caller holds e.mu.
func (e *Engine) subscriptionsLocked() int {
	n := 0
	for _, qe := range e.subs {
		qe.mu.Lock()
		n += len(qe.subs)
		qe.mu.Unlock()
	}
	return n
}

// dropQueryEmitterLocked detaches and returns the emitter of one query
// (nil when it has none), removing it from the engine so a later
// re-registration under the same name starts fresh. Caller holds e.mu and
// must stop the returned emitter after releasing it.
func (e *Engine) dropQueryEmitterLocked(query string) *queryEmitter {
	qe := e.subs[query]
	if qe != nil {
		delete(e.subs, query)
	}
	return qe
}
