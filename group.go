package datacell

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"datacell/internal/basket"
	"datacell/internal/core"
	"datacell/internal/plan"
)

// Strategy selects the paper's multi-query processing scheme (§4.2,
// Figures 2a–2c) used to wire all continuous queries that consume one
// stream. It is set engine-wide with SetStrategy or the SQL pragma
// `set strategy = 'separate' | 'shared' | 'partial'`.
type Strategy string

// Multi-query processing strategies.
const (
	// StrategySeparate replicates every arriving tuple into a private
	// basket per query; queries run fully independently (Figure 2a).
	StrategySeparate Strategy = "separate"
	// StrategyShared lets all queries read the stream basket in place; a
	// locker/unlocker pair synchronises the group and covered tuples are
	// removed once per group, not once per query (Figure 2b).
	StrategyShared Strategy = "shared"
	// StrategyPartial chains the queries: each removes the tuples it
	// covers and forwards only the residue to the next (Figure 2c).
	StrategyPartial Strategy = "partial"
)

// ParseStrategy converts a strategy name into a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(strings.ToLower(strings.TrimSpace(s))) {
	case StrategySeparate:
		return StrategySeparate, nil
	case StrategyShared:
		return StrategyShared, nil
	case StrategyPartial:
		return StrategyPartial, nil
	}
	return "", fmt.Errorf("datacell: unknown strategy %q (want 'separate', 'shared' or 'partial')", s)
}

// queryGroup manages the multi-query wiring of one stream: every
// continuous query consuming the stream is either a scan member (a
// compiled plan.StreamScan that can be wired under any strategy) or a tap
// (the private replica basket of a standalone query that needs a full
// copy of the stream). Membership changes and engine strategy switches
// tear the current factory wiring down and rebuild it, which is safe
// while the scheduler runs.
type queryGroup struct {
	name   string
	stream *basket.Basket
	scans  []*groupMember
	taps   []*basket.Basket
	wired  []*core.Factory
	// privs records every private replica basket this group ever created,
	// including those of since-removed members: a replica's residue is
	// per-query window state that must never be mistaken for in-flight
	// stream data by drainAux (other queries already got their copies).
	privs map[*basket.Basket]bool
	// effective is the strategy of the current wiring (taps force
	// separate); gen numbers wirings so rebuilt factories get fresh names.
	effective Strategy
	gen       int
}

// groupMember is one scan member: its compiled stream-scan artifact, the
// private replica used under the separate strategy (created lazily,
// persists across rewires so residual window tuples survive), and the
// factory currently executing the query.
type groupMember struct {
	name    string
	scan    *plan.StreamScan
	priv    *basket.Basket
	factory *core.Factory
}

// flush runs the member's query once over its private replica, consuming
// whatever it covers. Called during a rewire (the member's factory is
// quiesced), it takes the same basket locks a firing would, in global ID
// order. Residual tuples the query already declined to cover match
// nothing again, so flushing is idempotent; only replicated-but-
// unprocessed tuples produce output.
func (m *groupMember) flush() error {
	if m.priv == nil || m.priv.Len() == 0 {
		return nil
	}
	if m.priv.Len() < m.scan.Threshold {
		// A tuple-count window that is not full has not triggered; its
		// tuples stay in the replica and resume if the group returns to
		// the separate wiring.
		return nil
	}
	out := m.scan.Out
	lockSet := append([]*basket.Basket{m.priv, out}, m.scan.LockOnly...)
	uniq := lockSet[:0]
	seen := map[uint64]bool{}
	for _, b := range lockSet {
		if !seen[b.ID()] {
			seen[b.ID()] = true
			uniq = append(uniq, b)
		}
	}
	slices.SortFunc(uniq, func(a, b *basket.Basket) int {
		switch {
		case a.ID() < b.ID():
			return -1
		case a.ID() > b.ID():
			return 1
		}
		return 0
	})
	for _, b := range uniq {
		b.Lock()
	}
	before := out.LenLocked()
	err := m.scan.Run(m.priv, nil)
	grew := out.LenLocked() > before
	for i := len(uniq) - 1; i >= 0; i-- {
		uniq[i].Unlock()
	}
	if grew {
		out.NotifyAppend()
	}
	return err
}

// groupLocked returns (creating if needed) the query group of a stream.
// Caller holds e.mu.
func (e *Engine) groupLocked(streamName string) (*queryGroup, error) {
	if g, ok := e.groups[streamName]; ok {
		return g, nil
	}
	b := e.cat.Basket(streamName)
	if b == nil {
		return nil, fmt.Errorf("datacell: unknown stream %q", streamName)
	}
	g := &queryGroup{name: streamName, stream: b, effective: e.strategy}
	e.groups[streamName] = g
	return g, nil
}

// rewireLocked tears down a group's current factory wiring and rebuilds
// it under the engine strategy. Old factories are unregistered and waited
// idle first, so they can never fire again; a mid-cycle teardown of the
// shared wiring may have left the stream blocked, which the rebuild
// reopens. Caller holds e.mu; factory bodies never take e.mu, so waiting
// under it cannot deadlock.
func (e *Engine) rewireLocked(g *queryGroup) error {
	for _, f := range g.wired {
		e.sch.Unregister(f)
		f.WaitIdle()
	}
	// Complete a shared cycle torn down midway: tuples some reader already
	// emitted carry cover credits, and the unlocker that would have
	// removed them is gone — delete them now or the rebuilt wiring scans
	// them again and emits duplicates. A no-op outside shared wiring
	// (no credits are ever recorded).
	g.stream.Lock()
	g.stream.DeleteCoveredLocked(1)
	g.stream.Unlock()
	g.stream.SetEnabled(true)
	g.drainAux()
	g.wired = nil
	for _, m := range g.scans {
		m.factory = nil
	}
	if len(g.scans) == 0 && len(g.taps) == 0 {
		return nil
	}

	// Standalone queries need a full private copy of the stream, which
	// only the replicating wiring provides; their presence forces the
	// separate strategy for the whole group.
	g.effective = e.strategy
	if len(g.taps) > 0 {
		g.effective = StrategySeparate
	}
	// Leaving the separate wiring: process tuples already replicated into
	// the members' private baskets first — no factory of the new wiring
	// reads them, so they would otherwise be stranded unprocessed.
	if g.effective != StrategySeparate {
		for _, m := range g.scans {
			if err := m.flush(); err != nil {
				return err
			}
		}
	}
	g.gen++
	prefix := fmt.Sprintf("%s$%s%d", g.name, g.effective, g.gen)

	var fs []*core.Factory
	switch g.effective {
	case StrategySeparate:
		outs := make([]*basket.Basket, 0, len(g.scans)+len(g.taps))
		for _, m := range g.scans {
			if m.priv == nil {
				names, types := g.stream.UserSchema()
				m.priv = basket.New(g.name+"$"+strings.ToLower(m.name), names, types)
				if g.privs == nil {
					g.privs = map[*basket.Basket]bool{}
				}
				g.privs[m.priv] = true
			}
			outs = append(outs, m.priv)
		}
		outs = append(outs, g.taps...)
		rep, err := core.NewReplicator(prefix+".replicate", g.stream, outs)
		if err != nil {
			return err
		}
		fs = append(fs, rep)
		for _, m := range g.scans {
			f, err := core.NewStreamQueryFactory(prefix+".q."+m.name, m.priv, m.scan.StreamQuery())
			if err != nil {
				return err
			}
			m.factory = f
			fs = append(fs, f)
		}
	case StrategyShared:
		all, err := core.SharedBaskets(prefix, g.stream, g.streamQueries())
		if err != nil {
			return err
		}
		for i, m := range g.scans {
			m.factory = all[1+i] // [locker, readers…, unlocker]
		}
		fs = all
	case StrategyPartial:
		all, err := core.PartialDeletes(prefix, g.stream, g.streamQueries())
		if err != nil {
			return err
		}
		for i, m := range g.scans {
			m.factory = all[i]
		}
		fs = all
	}
	for _, f := range fs {
		if err := e.sch.Register(f); err != nil {
			return err
		}
	}
	g.wired = fs
	return nil
}

// drainAux returns tuples stranded in auxiliary wiring baskets — the
// partial-delete chain of a torn-down wiring — to the stream, so a
// mid-cycle rewire never loses in-flight data. Only old factory inputs
// that carry the stream's schema qualify; member replicas (g.privs,
// including replicas of removed members) keep their residue — it is
// per-query window state, not in-flight data — and the shared wiring's
// flag baskets don't match the schema.
func (g *queryGroup) drainAux() {
	sNames, sTypes := g.stream.UserSchema()
	seen := map[*basket.Basket]bool{}
	for _, f := range g.wired {
		for _, in := range f.Inputs() {
			if in == g.stream || g.privs[in] || seen[in] {
				continue
			}
			seen[in] = true
			names, types := in.UserSchema()
			if !slices.Equal(names, sNames) || !slices.Equal(types, sTypes) {
				continue
			}
			if rel := in.TakeAll(); rel.Len() > 0 {
				g.stream.Append(rel)
			}
		}
	}
}

func (g *queryGroup) streamQueries() []core.StreamQuery {
	qs := make([]core.StreamQuery, len(g.scans))
	for i, m := range g.scans {
		qs[i] = m.scan.StreamQuery()
	}
	return qs
}

// SetStrategy switches the engine's multi-query processing strategy and
// rewires every stream's query group accordingly. It can be called while
// the engine runs; tuples already replicated into private baskets under
// the previous wiring are processed by their owners before the switch
// takes effect for them.
func (e *Engine) SetStrategy(s Strategy) error {
	s, err := ParseStrategy(string(s))
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.strategy == s {
		return nil
	}
	e.strategy = s
	names := make([]string, 0, len(e.groups))
	for n := range e.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := e.rewireLocked(e.groups[n]); err != nil {
			return err
		}
	}
	return nil
}

// Strategy returns the engine's current multi-query processing strategy.
func (e *Engine) Strategy() Strategy {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.strategy
}

// GroupInfo describes the current wiring of one stream's query group.
type GroupInfo struct {
	Stream   string
	Strategy Strategy // effective strategy of the installed wiring
	Members  []string // group-wired (shareable) queries, wiring order
	Taps     int      // standalone consumers receiving a full replica
	// ReplicaAppended counts tuples appended to private replica baskets
	// over the group's lifetime: 0 under shared/partial wiring, about
	// members×ingested under separate wiring.
	ReplicaAppended int64
}

// Groups reports the current multi-query wiring of every stream that has
// at least one continuous consumer, sorted by stream name.
func (e *Engine) Groups() []GroupInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.groups))
	for n := range e.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]GroupInfo, 0, len(names))
	for _, n := range names {
		g := e.groups[n]
		if len(g.scans) == 0 && len(g.taps) == 0 {
			continue
		}
		gi := GroupInfo{Stream: n, Strategy: g.effective, Taps: len(g.taps)}
		for _, m := range g.scans {
			gi.Members = append(gi.Members, m.name)
			if m.priv != nil {
				gi.ReplicaAppended += m.priv.Stats().Appended
			}
		}
		for _, t := range g.taps {
			gi.ReplicaAppended += t.Stats().Appended
		}
		out = append(out, gi)
	}
	return out
}
