package datacell

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"time"

	"datacell/internal/adapt"
	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/core"
	"datacell/internal/ingest"
	"datacell/internal/obs"
	"datacell/internal/plan"
	"datacell/internal/vector"
)

// Strategy selects the paper's multi-query processing scheme (§4.2,
// Figures 2a–2c) used to wire all continuous queries that consume one
// stream. It is set engine-wide with SetStrategy or the SQL pragma
// `set strategy = 'separate' | 'shared' | 'partial'`.
type Strategy string

// Multi-query processing strategies.
const (
	// StrategySeparate replicates every arriving tuple into a private
	// basket per query; queries run fully independently (Figure 2a).
	StrategySeparate Strategy = "separate"
	// StrategyShared lets all queries read the stream basket in place; a
	// locker/unlocker pair synchronises the group and covered tuples are
	// removed once per group, not once per query (Figure 2b).
	StrategyShared Strategy = "shared"
	// StrategyPartial chains the queries: each removes the tuples it
	// covers and forwards only the residue to the next (Figure 2c).
	StrategyPartial Strategy = "partial"
)

// ParseStrategy converts a strategy name into a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(strings.ToLower(strings.TrimSpace(s))) {
	case StrategySeparate:
		return StrategySeparate, nil
	case StrategyShared:
		return StrategyShared, nil
	case StrategyPartial:
		return StrategyPartial, nil
	}
	return "", fmt.Errorf("datacell: unknown strategy %q (want 'separate', 'shared' or 'partial')", s)
}

// queryGroup manages the multi-query wiring of one stream: every
// continuous query consuming the stream is either a scan member (a
// compiled plan.StreamScan that can be wired under any strategy) or a tap
// (the private replica basket of a standalone query that needs a full
// copy of the stream). Membership changes and engine strategy switches
// tear the current factory wiring down and rebuild it, which is safe
// while the scheduler runs.
type queryGroup struct {
	name   string
	stream *basket.Basket
	scans  []*groupMember
	taps   []*basket.Basket
	wired  []*core.Factory
	// privs records every private replica basket this group ever created,
	// including those of since-removed members: a replica's residue is
	// per-query window state that must never be mistaken for in-flight
	// stream data by drainAux (other queries already got their copies).
	privs map[*basket.Basket]bool
	// effective is the strategy of the current wiring (taps force
	// separate); parallel is the partition count the wiring actually uses;
	// gen numbers wirings so rebuilt factories get fresh names.
	effective Strategy
	parallel  int
	gen       int

	// Partitioned-wiring teardown state. parts are the stream partitions
	// of a shared/partial wiring, including any range-routing catch-all
	// (their residue returns to the stream); memberParts are the
	// per-member partitions of a separate wiring, again including
	// catch-alls (their residue is per-query window state and returns to
	// the member's private replica); staging pairs flush
	// computed-but-unmerged results to their query's result basket; pbs
	// are the partitioned baskets the wiring routes through, kept for
	// monitoring (per-partition routed counts, pruning counters).
	parts       []*basket.Basket
	memberParts map[*groupMember][]*basket.Basket
	staging     []stagedOut
	pbs         []*basket.PartitionedBasket

	// Ingest periphery state. ingest is the stream's delivery target:
	// receptor shards acquire it per batch, rewires quiesce it and swap
	// the sink (route-at-ingest straight into the group-wide partitioned
	// basket under shared/partial partitioned wiring, a per-member
	// fan-out under partitioned separate wiring, the stream basket
	// otherwise). listeners are the sharded ingest groups attached with
	// ListenIngest.
	ingest    *ingest.SwitchTarget
	listeners []*IngestListener

	// Adaptive-parallelism state. override is the per-group parallelism:
	// 0 inherits the engine setting, -1 follows the controller, >0 pins
	// the group. ctl/ctlP are the group's controller and its current
	// target (valid while the group is auto); rewires and
	// lastRewireReason account for every wiring rebuild over the group's
	// lifetime (pendingReason is set by the caller that triggers one).
	override         int
	ctl              *adapt.Controller
	ctlP             int
	rewires          int64
	lastRewireReason string
	pendingReason    string

	// Load-sampling baselines: the controller and GroupInfo work on
	// windowed deltas, so each metronome tick subtracts the previous
	// totals. sampleGen invalidates the factory baselines across rewires
	// (fresh factories restart their counters).
	lastSampleAt  time.Time
	sampleGen     int
	lastBusy      time.Duration
	lastFires     int64
	lastIngTuples int64
	lastIngStalls int64
	lastIngStallT time.Duration
	rates         groupRates
}

// groupRates is the windowed ingest activity of one group: deltas over
// the last sampling window rather than lifetime totals, so explain and
// Groups show current load.
type groupRates struct {
	window         time.Duration
	tuplesPerSec   float64
	stallsDelta    int64
	stallTimeDelta time.Duration
}

// target returns the group's ingest delivery target, created on first
// use with the stream basket as sink.
func (g *queryGroup) target() *ingest.SwitchTarget {
	if g.ingest == nil {
		g.ingest = ingest.NewSwitchTarget(ingest.BasketSink(g.stream))
	}
	return g.ingest
}

// routeSink returns the sink the current wiring ingests through:
// route-at-ingest applies when the group runs one partitioned wiring for
// every member (shared/partial strategy), so a receptor batch can be
// routed once and land in its destination partitions — or the catch-all
// — without the stream basket and splitter hop. A partitioned separate
// wiring routes at ingest too: the fan-out sink performs the
// replicator's one-copy-per-member duplication itself, delivering each
// copy straight into the member's partitioned basket (or private
// replica) and each tap's replica, so the stream basket, replicator and
// splitter transitions all leave the ingest path. Unpartitioned separate
// wiring keeps the stream basket as the entry point.
func (g *queryGroup) routeSink() ingest.Sink {
	if g.effective != StrategySeparate && len(g.parts) > 0 && len(g.pbs) == 1 {
		return ingest.PartitionedSink(g.pbs[0])
	}
	if g.effective == StrategySeparate && len(g.memberParts) > 0 {
		sinks := make([]ingest.Sink, 0, len(g.scans)+len(g.taps))
		for _, m := range g.scans {
			switch {
			case m.pb != nil:
				sinks = append(sinks, ingest.PartitionedSink(m.pb))
			case m.priv != nil:
				sinks = append(sinks, ingest.BasketSink(m.priv))
			}
		}
		for _, t := range g.taps {
			sinks = append(sinks, ingest.BasketSink(t))
		}
		if len(sinks) > 0 {
			return ingest.FanoutSink(sinks)
		}
	}
	return ingest.BasketSink(g.stream)
}

// stagedOut pairs the staging baskets of one partitioned query with its
// result basket, for the teardown flush. combine is the query's two-phase
// fold when the wiring staged partial-aggregate state rather than final
// results: the flush must merge, not concatenate.
type stagedOut struct {
	staging []*basket.Basket
	out     *basket.Basket
	combine *core.Combine
}

// groupMember is one scan member: its compiled stream-scan artifact, the
// private replica used under the separate strategy (created lazily,
// persists across rewires so residual window tuples survive), the
// partitioned basket of the current wiring (nil when unpartitioned;
// route-at-ingest delivers the member's stream copy straight into it),
// and the factories currently executing the query — one under
// unpartitioned wiring, one clone per partition under partitioned
// wiring.
type groupMember struct {
	name      string
	scan      *plan.StreamScan
	priv      *basket.Basket
	pb        *basket.PartitionedBasket
	factories []*core.Factory
	// merge is the member's merge emitter under partitioned wiring (nil
	// otherwise); its BarrierStats feed the merge stage of the query's
	// timing breakdown.
	merge *core.Factory
}

// flush runs the member's query once over its private replica, consuming
// whatever it covers. Called during a rewire (the member's factory is
// quiesced), it takes the same basket locks a firing would, in global ID
// order. Residual tuples the query already declined to cover match
// nothing again, so flushing is idempotent; only replicated-but-
// unprocessed tuples produce output.
func (m *groupMember) flush() error {
	if m.priv == nil || m.priv.Len() == 0 {
		return nil
	}
	if m.priv.Len() < m.scan.Threshold {
		// A tuple-count window that is not full has not triggered; its
		// tuples stay in the replica and resume if the group returns to
		// the separate wiring.
		return nil
	}
	out := m.scan.Out
	lockSet := append([]*basket.Basket{m.priv, out}, m.scan.LockOnly...)
	uniq := lockSet[:0]
	seen := map[uint64]bool{}
	for _, b := range lockSet {
		if !seen[b.ID()] {
			seen[b.ID()] = true
			uniq = append(uniq, b)
		}
	}
	slices.SortFunc(uniq, func(a, b *basket.Basket) int {
		switch {
		case a.ID() < b.ID():
			return -1
		case a.ID() > b.ID():
			return 1
		}
		return 0
	})
	for _, b := range uniq {
		b.Lock()
	}
	before := out.LenLocked()
	err := m.scan.Run(m.priv, out, nil)
	grew := out.LenLocked() > before
	for i := len(uniq) - 1; i >= 0; i-- {
		uniq[i].Unlock()
	}
	if grew {
		out.NotifyAppend()
	}
	return err
}

// groupLocked returns (creating if needed) the query group of a stream.
// Caller holds e.mu.
func (e *Engine) groupLocked(streamName string) (*queryGroup, error) {
	if g, ok := e.groups[streamName]; ok {
		return g, nil
	}
	b := e.cat.Basket(streamName)
	if b == nil {
		return nil, fmt.Errorf("datacell: unknown stream %q", streamName)
	}
	g := &queryGroup{name: streamName, stream: b, effective: e.strategy, parallel: 1}
	e.groups[streamName] = g
	return g, nil
}

// rewireLocked tears down a group's current factory wiring and rebuilds
// it under the engine strategy, then records the rebuild in the event
// trace with its reason and duration. Caller holds e.mu.
func (e *Engine) rewireLocked(g *queryGroup) error {
	start := time.Now()
	err := e.rewireInnerLocked(g)
	e.ev.rewires.Inc()
	ev := obs.Event{Subsystem: "engine", Kind: "rewire", Name: g.name,
		Reason: g.lastRewireReason, Duration: time.Since(start), Time: e.cat.Now(),
		Fields: fmt.Sprintf("strategy=%s parallel=%d members=%d taps=%d",
			g.effective, g.parallel, len(g.scans), len(g.taps))}
	if err != nil {
		ev.Fields += " err=" + err.Error()
	}
	e.trace.Add(ev)
	return err
}

// rewireInnerLocked is the rebuild itself. Old factories are unregistered
// and waited idle first, so they can never fire again; a mid-cycle
// teardown of the shared wiring may have left the stream blocked, which
// the rebuild reopens. Caller holds e.mu; factory bodies never take e.mu,
// so waiting under it cannot deadlock.
func (e *Engine) rewireInnerLocked(g *queryGroup) error {
	for _, f := range g.wired {
		e.sch.Unregister(f)
		f.WaitIdle()
	}
	// Complete a shared cycle torn down midway: tuples some reader already
	// emitted carry cover credits, and the unlocker that would have
	// removed them is gone — delete them now or the rebuilt wiring scans
	// them again and emits duplicates. A no-op outside shared wiring
	// (no credits are ever recorded).
	g.stream.Lock()
	g.stream.DeleteCoveredLocked(1)
	g.stream.Unlock()
	g.stream.SetEnabled(true)
	// Re-enable every destination of the torn-down partitioned wiring
	// before quiescing the ingest periphery: a route-at-ingest append
	// blocked on a partition that a mid-cycle teardown left disabled must
	// complete for the quiesce to finish, and with the factories gone
	// nothing else would ever re-enable it. (drainPartitioned re-enables
	// again under the basket lock; doing it twice is harmless.)
	for _, pb := range g.pbs {
		for _, d := range pb.Destinations() {
			d.SetEnabled(true)
		}
	}
	// Quiesce the ingest periphery: block new receptor deliveries and
	// wait out in-flight ones, so the drains below observe a stable
	// basket population and no batch lands in a basket that is being
	// dismantled. The deferred resume installs the rebuilt wiring's sink
	// (route-at-ingest or stream basket) and reopens delivery.
	resume := g.target().Quiesce()
	defer func() { resume(g.routeSink()) }()
	// Partitioned baskets drain first: staging results must reach their
	// result baskets before drainAux could mistake a stream-schema staging
	// basket for in-flight stream data, and partition residue must return
	// to its owner (stream or member replica) with its cover credits
	// resolved, which drainAux does not do.
	g.drainPartitioned()
	g.drainAux()
	g.wired = nil
	g.parts, g.memberParts, g.staging, g.pbs = nil, nil, nil, nil
	g.parallel = 1
	for _, m := range g.scans {
		m.factories = nil
		m.pb = nil
		m.merge = nil
	}
	g.rewires++
	if g.pendingReason != "" {
		g.lastRewireReason = g.pendingReason
		g.pendingReason = ""
	} else {
		g.lastRewireReason = "membership or configuration change"
	}
	// Fresh factories restart their fire/busy counters; invalidate the
	// sampler's baselines so the next tick reports a zero delta instead of
	// a negative one.
	g.sampleGen = -1
	if len(g.scans) == 0 && len(g.taps) == 0 {
		return nil
	}

	// Standalone queries need a full private copy of the stream, which
	// only the replicating wiring provides; their presence forces the
	// separate strategy for the whole group.
	g.effective = e.strategy
	if len(g.taps) > 0 {
		g.effective = StrategySeparate
	}
	// Leaving the separate wiring: process tuples already replicated into
	// the members' private baskets first — no factory of the new wiring
	// reads them, so they would otherwise be stranded unprocessed.
	if g.effective != StrategySeparate {
		for _, m := range g.scans {
			if err := m.flush(); err != nil {
				return err
			}
		}
	}
	g.gen++
	prefix := fmt.Sprintf("%s$%s%d", g.name, g.effective, g.gen)

	var fs []*core.Factory
	var err error
	if g.effective == StrategySeparate {
		fs, err = e.wireSeparateLocked(g, prefix)
	} else {
		fs, err = e.wireSharedChainLocked(g, prefix)
	}
	if err != nil {
		return err
	}
	// Latency attachment must precede scheduler registration: Register
	// spawns the firing goroutines, and TryFire reads the latency fields
	// unsynchronized.
	e.attachLatencyLocked(g)
	for _, f := range fs {
		if err := e.sch.Register(f); err != nil {
			return err
		}
	}
	g.wired = fs
	return nil
}

// attachLatencyLocked hands every member factory of the fresh wiring its
// query's latency histogram. The source basket is the factory's first
// input: the private replica (separate), the shared stream or chain
// basket (shared/partial), or the clone's partition basket — in every
// wiring that basket's sys_ts column carries the receptor arrival stamp,
// copied along full-width by replicators and routers. Caller holds e.mu.
func (e *Engine) attachLatencyLocked(g *queryGroup) {
	for _, m := range g.scans {
		h := e.qlat[m.name]
		if h == nil {
			continue
		}
		for _, f := range m.factories {
			if ins := f.Inputs(); len(ins) > 0 {
				f.SetLatency(h, ins[0], e.cat.Now)
			}
		}
	}
}

// wireSeparateLocked builds the separate-baskets wiring: a replicator
// copies the stream into one private replica per member (plus the taps),
// and each member runs over its replica — partitioned into splitter,
// per-partition clones and a merge emitter when the member's plan admits
// it and the engine parallelism exceeds one, as a single factory
// otherwise. Partitioning composes per member here: every member applies
// its own verdict.
func (e *Engine) wireSeparateLocked(g *queryGroup, prefix string) ([]*core.Factory, error) {
	outs := make([]*basket.Basket, 0, len(g.scans)+len(g.taps))
	for _, m := range g.scans {
		if m.priv == nil {
			names, types := g.stream.UserSchema()
			m.priv = basket.New(g.name+"$"+strings.ToLower(m.name), names, types)
			if g.privs == nil {
				g.privs = map[*basket.Basket]bool{}
			}
			g.privs[m.priv] = true
		}
		outs = append(outs, m.priv)
	}
	outs = append(outs, g.taps...)
	rep, err := core.NewReplicator(prefix+".replicate", g.stream, outs)
	if err != nil {
		return nil, err
	}
	fs := []*core.Factory{rep}
	for _, m := range g.scans {
		mfs, err := e.wireMemberLocked(g, prefix, m)
		if err != nil {
			return nil, err
		}
		fs = append(fs, mfs...)
	}
	return fs, nil
}

// wireMemberLocked wires one separate-strategy member over its private
// replica.
func (e *Engine) wireMemberLocked(g *queryGroup, prefix string, m *groupMember) ([]*core.Factory, error) {
	sq := m.scan.StreamQuery()
	p := e.groupParallelismLocked(g)
	if p <= 1 || m.scan.Part.Mode == plan.PartNone {
		f, err := core.NewStreamQueryFactory(prefix+".q."+m.name, m.priv, sq)
		if err != nil {
			return nil, err
		}
		m.factories = []*core.Factory{f}
		return []*core.Factory{f}, nil
	}
	names, types := g.stream.UserSchema()
	pb, err := newPartitionedBasket(prefix+".part."+m.name, names, types, p, m.scan.Part)
	if err != nil {
		return nil, err
	}
	pw, err := core.PartitionedQuery(prefix+".m."+m.name, m.priv, pb, sq)
	if err != nil {
		return nil, err
	}
	m.factories = pw.QueryFs[0]
	m.merge = pw.Merges[0]
	m.pb = pb
	if g.memberParts == nil {
		g.memberParts = map[*groupMember][]*basket.Basket{}
	}
	g.memberParts[m] = pb.Destinations()
	g.staging = append(g.staging, stagedOut{staging: pw.Staging[0], out: sq.Out, combine: sq.Combine})
	g.pbs = append(g.pbs, pb)
	g.parallel = p
	return pw.Factories, nil
}

// newPartitionedBasket builds the partitioned basket a routing verdict
// calls for: range-routed with a catch-all for sargable plans, hash for
// grouped plans, round-robin otherwise.
func newPartitionedBasket(name string, names []string, types []vector.Type, p int, v plan.Verdict) (*basket.PartitionedBasket, error) {
	switch v.Mode {
	case plan.PartRange:
		return basket.NewPartitionedRange(name, names, types, p, v.Col, v.Set())
	case plan.PartHash:
		// A grouped plan with a sargable side condition still prunes:
		// tuples outside the necessary-condition set divert to a catch-all
		// instead of being hashed to a partial-aggregate clone.
		if col, set, ok := v.Prune(); ok {
			return basket.NewPartitionedHashPruned(name, names, types, p, v.Col, col, set)
		}
		return basket.NewPartitioned(name, names, types, p, basket.PartitionHash, v.Col)
	}
	return basket.NewPartitioned(name, names, types, p, basket.PartitionRoundRobin, "")
}

// wireSharedChainLocked builds the shared-baskets or partial-deletes
// wiring. All members work on the stream basket (or its partitions)
// directly, so partitioning applies group-wide: every member must accept
// the same split, otherwise the group stays at one partition.
func (e *Engine) wireSharedChainLocked(g *queryGroup, prefix string) ([]*core.Factory, error) {
	p := e.groupParallelismLocked(g)
	verdict := g.partitioning()
	if p > 1 && verdict.Mode != plan.PartNone {
		names, types := g.stream.UserSchema()
		pb, err := newPartitionedBasket(prefix+".part", names, types, p, verdict)
		if err != nil {
			return nil, err
		}
		var pw *core.Partitioned
		if g.effective == StrategyShared {
			pw, err = core.PartitionedShared(prefix, g.stream, pb, g.streamQueries())
		} else {
			pw, err = core.PartitionedPartial(prefix, g.stream, pb, g.streamQueries())
		}
		if err != nil {
			return nil, err
		}
		for i, m := range g.scans {
			m.factories = pw.QueryFs[i]
			m.merge = pw.Merges[i]
			g.staging = append(g.staging, stagedOut{staging: pw.Staging[i], out: m.scan.Out, combine: m.scan.Combine})
		}
		g.parts = pb.Destinations()
		g.pbs = append(g.pbs, pb)
		g.parallel = p
		return pw.Factories, nil
	}
	if g.effective == StrategyShared {
		all, err := core.SharedBaskets(prefix, g.stream, g.streamQueries())
		if err != nil {
			return nil, err
		}
		for i, m := range g.scans {
			m.factories = []*core.Factory{all[1+i]} // [locker, readers…, unlocker]
		}
		return all, nil
	}
	all, err := core.PartialDeletes(prefix, g.stream, g.streamQueries())
	if err != nil {
		return nil, err
	}
	for i, m := range g.scans {
		m.factories = []*core.Factory{all[i]}
	}
	return all, nil
}

// partitioning computes the group-wide partitioning verdict used by the
// shared and partial wirings: row-local members accept any split, grouped
// members need their hash column, all-sargable members route by range on
// a column they all constrain (with the union of their sets feeding the
// catch-all test), and any non-partitionable member — or two grouped
// members hashing different columns — pins the group to one partition.
func (g *queryGroup) partitioning() plan.Verdict {
	vs := make([]plan.Verdict, len(g.scans))
	for i, m := range g.scans {
		vs[i] = m.scan.Part
	}
	return plan.CombineVerdicts(vs...)
}

// drainPartitioned returns the tuples held by a torn-down partitioned
// wiring to where they belong: staged results flush to their query's
// result basket, stream partitions return to the stream (completing any
// interrupted shared cycle's covered deletes first, and re-enabling
// partitions a mid-cycle teardown left blocked), and per-member partitions
// return to the member's private replica — they are per-query window
// state, never shared stream data. Runs after every wired factory is
// unregistered and idle.
func (g *queryGroup) drainPartitioned() {
	for _, so := range g.staging {
		if so.combine != nil {
			// Staged partial-aggregate state must be folded, not
			// concatenated: the teardown acts as the wiring's final
			// combining-merge firing.
			parts := make([]*bat.Relation, len(so.staging))
			any := false
			for i, st := range so.staging {
				parts[i] = st.TakeAll()
				if parts[i].Len() > 0 {
					any = true
				}
			}
			if any {
				if rel, err := so.combine.Merge(parts, so.out); err == nil && rel.Len() > 0 {
					so.out.Append(rel)
				}
			}
			continue
		}
		for _, st := range so.staging {
			if rel := st.TakeAll(); rel.Len() > 0 {
				so.out.Append(rel)
			}
		}
	}
	for _, p := range g.parts {
		p.Lock()
		p.SetOnEnable(nil)
		p.DeleteCoveredLocked(1)
		rel := p.TakeAllLocked()
		p.SetEnabledLocked(true)
		p.Unlock()
		if rel.Len() > 0 {
			g.stream.Append(rel)
		}
	}
	for m, parts := range g.memberParts {
		for _, p := range parts {
			p.SetOnEnable(nil)
			if rel := p.TakeAll(); rel.Len() > 0 {
				m.priv.Append(rel)
			}
		}
	}
}

// drainAux returns tuples stranded in auxiliary wiring baskets — the
// partial-delete chain of a torn-down wiring — to the stream, so a
// mid-cycle rewire never loses in-flight data. Only old factory inputs
// that carry the stream's schema qualify; member replicas (g.privs,
// including replicas of removed members) keep their residue — it is
// per-query window state, not in-flight data — and the shared wiring's
// flag baskets don't match the schema.
func (g *queryGroup) drainAux() {
	sNames, sTypes := g.stream.UserSchema()
	seen := map[*basket.Basket]bool{}
	for _, f := range g.wired {
		for _, in := range f.Inputs() {
			if in == g.stream || g.privs[in] || seen[in] {
				continue
			}
			seen[in] = true
			names, types := in.UserSchema()
			if !slices.Equal(names, sNames) || !slices.Equal(types, sTypes) {
				continue
			}
			if rel := in.TakeAll(); rel.Len() > 0 {
				g.stream.Append(rel)
			}
		}
	}
}

func (g *queryGroup) streamQueries() []core.StreamQuery {
	qs := make([]core.StreamQuery, len(g.scans))
	for i, m := range g.scans {
		qs[i] = m.scan.StreamQuery()
	}
	return qs
}

// SetStrategy switches the engine's multi-query processing strategy and
// rewires every stream's query group accordingly. It can be called while
// the engine runs; tuples already replicated into private baskets under
// the previous wiring are processed by their owners before the switch
// takes effect for them.
func (e *Engine) SetStrategy(s Strategy) error {
	s, err := ParseStrategy(string(s))
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.strategy == s {
		return nil
	}
	e.strategy = s
	for _, g := range e.groups {
		g.pendingReason = fmt.Sprintf("strategy switched to %s", s)
	}
	return e.rewireAllLocked()
}

// Strategy returns the engine's current multi-query processing strategy.
func (e *Engine) Strategy() Strategy {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.strategy
}

// SetParallelism sets the number of stream partitions partitionable
// continuous queries run over and rewires every stream's query group. It
// can be called while the engine runs; in-flight tuples migrate to the new
// wiring. P=1 restores the unpartitioned wiring; plans whose verdict is
// not partitionable keep a single factory regardless of P.
func (e *Engine) SetParallelism(p int) error {
	if p < 1 {
		return fmt.Errorf("datacell: parallelism must be at least 1, got %d", p)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.parallelism == p && !e.autoParallel {
		return nil
	}
	e.parallelism = p
	e.autoParallel = false
	for _, g := range e.groups {
		g.pendingReason = fmt.Sprintf("parallelism pinned to %d", p)
	}
	return e.rewireAllLocked()
}

// Parallelism returns the engine's configured partition count.
func (e *Engine) Parallelism() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parallelism
}

// rewireAllLocked rebuilds every stream group's wiring under the current
// strategy and parallelism. Caller holds e.mu.
func (e *Engine) rewireAllLocked() error {
	names := make([]string, 0, len(e.groups))
	for n := range e.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := e.rewireLocked(e.groups[n]); err != nil {
			return err
		}
	}
	return nil
}

// GroupInfo describes the current wiring of one stream's query group.
type GroupInfo struct {
	Stream     string
	Strategy   Strategy // effective strategy of the installed wiring
	Partitions int      // stream partitions the wiring runs over (1 = unpartitioned)
	Members    []string // group-wired (shareable) queries, wiring order
	Taps       int      // standalone consumers receiving a full replica
	// ReplicaAppended counts tuples appended to private replica baskets
	// over the group's lifetime: 0 under shared/partial wiring, about
	// members×ingested under separate wiring.
	ReplicaAppended int64
	// Routing describes how the current partitioned wiring routes tuples
	// ("round-robin", "hash(k)", "range(v)"; several comma-joined when
	// separate-strategy members carry different verdicts; "" when
	// unpartitioned). The counters below reset on every rewire: they
	// describe the installed wiring, not the group's lifetime.
	Routing string
	// Wirings is the number of partitioned baskets installed (one per
	// partitioned member under separate wiring, one group-wide under
	// shared/partial; 0 when unpartitioned).
	Wirings int
	// RoutedParts counts tuples routed into scanned partitions across all
	// wirings — the work the query clones actually see.
	RoutedParts int64
	// Pruned counts tuples the range router short-circuited into
	// catch-all baskets: work no clone ever does.
	Pruned int64
	// IngestPath describes where group-routed receptor batches currently
	// land: "stream basket" (splitter-fed) or "route-at-ingest …" when
	// decoded batches skip the splitter and go straight to partition
	// baskets. Empty when the stream has no ingest listeners. A listener
	// pinned to the splitter path (IngestOptions.SplitterPath) reports
	// its own path per shard in Receptors.
	IngestPath string
	// Receptors reports every attached ingest shard's counters (conns,
	// frames, tuples, stalls, stall time) and delivery path, listener by
	// listener.
	Receptors []IngestStats
	// IngestTuples, IngestStalls and IngestStallTime aggregate the
	// receptor counters across all shards. They are lifetime totals; the
	// IngestWindow/…Delta fields below carry the windowed view.
	IngestTuples    int64
	IngestStalls    int64
	IngestStallTime time.Duration

	// AutoParallelism reports whether the adaptive controller drives this
	// group's partition count (`set parallelism = auto`, engine-wide or
	// per stream). CurrentP is the wiring target the controller (or the
	// static setting) currently asks for — it can exceed Partitions when
	// the group's plans are not partitionable and the wiring stays at 1.
	AutoParallelism bool
	CurrentP        int
	// Rewires counts wiring rebuilds over the group's lifetime
	// (registration, strategy/parallelism changes, controller decisions);
	// LastRewireReason says why the most recent one happened.
	Rewires          int64
	LastRewireReason string
	// Windowed ingest-load deltas, updated on each sampler tick (zero
	// until the engine has started and a tick has run, or ManualAdaptTick
	// has been called): the length of the last sampling window, the
	// ingest rate over it, and how many receptor stalls / how much stall
	// time accrued within it. Unlike the cumulative counters above these
	// answer "is the group backpressured *now*".
	IngestWindow         time.Duration
	IngestTuplesPerSec   float64
	IngestStallsDelta    int64
	IngestStallTimeDelta time.Duration
}

// Groups reports the current multi-query wiring of every stream that has
// at least one continuous consumer, sorted by stream name.
func (e *Engine) Groups() []GroupInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.groupsLocked()
}

// groupsLocked computes per-stream group wiring reports. Caller holds e.mu.
func (e *Engine) groupsLocked() []GroupInfo {
	names := make([]string, 0, len(e.groups))
	for n := range e.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]GroupInfo, 0, len(names))
	for _, n := range names {
		g := e.groups[n]
		if len(g.scans) == 0 && len(g.taps) == 0 && len(g.listeners) == 0 {
			continue
		}
		gi := GroupInfo{
			Stream:               n,
			Strategy:             g.effective,
			Partitions:           g.parallel,
			Taps:                 len(g.taps),
			AutoParallelism:      e.groupAutoLocked(g),
			CurrentP:             e.groupParallelismLocked(g),
			Rewires:              g.rewires,
			LastRewireReason:     g.lastRewireReason,
			IngestWindow:         g.rates.window,
			IngestTuplesPerSec:   g.rates.tuplesPerSec,
			IngestStallsDelta:    g.rates.stallsDelta,
			IngestStallTimeDelta: g.rates.stallTimeDelta,
		}
		if len(g.listeners) > 0 {
			gi.IngestPath = g.target().Peek().Describe()
			for _, l := range g.listeners {
				for _, st := range l.Stats() {
					gi.Receptors = append(gi.Receptors, st)
					gi.IngestTuples += st.Tuples
					gi.IngestStalls += st.Stalls
					gi.IngestStallTime += st.StallTime
				}
			}
		}
		for _, m := range g.scans {
			gi.Members = append(gi.Members, m.name)
			if m.priv != nil {
				gi.ReplicaAppended += m.priv.Stats().Appended
			}
		}
		for _, t := range g.taps {
			gi.ReplicaAppended += t.Stats().Appended
		}
		var descs []string
		for _, pb := range g.pbs {
			gi.Wirings++
			for _, p := range pb.Parts() {
				gi.RoutedParts += p.Stats().Appended
			}
			if ca := pb.CatchAll(); ca != nil {
				gi.Pruned += ca.Stats().Appended
			}
			if d := pb.Describe(); !slices.Contains(descs, d) {
				descs = append(descs, d)
			}
		}
		gi.Routing = strings.Join(descs, ",")
		out = append(out, gi)
	}
	return out
}
