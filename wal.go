package datacell

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"datacell/internal/bat"
	"datacell/internal/ingest"
	"datacell/internal/obs"
	"datacell/internal/stream"
	"datacell/internal/wal"
)

// WALOptions configure the engine's write-ahead logging of ingest frames.
// Each stream gets its own segment-file log under Dir; every batch a
// receptor accepts is logged before it is routed into baskets, and
// Recover replays the un-checkpointed tail through the normal router path
// after a crash.
type WALOptions struct {
	// Dir is the log root; per-stream segments live in Dir/<stream>/.
	Dir string
	// SegmentBytes, SyncInterval and SyncBytes tune the per-stream logs;
	// zero values take the wal package defaults (64 MiB segments, 2ms
	// group-commit ticks, 1 MiB inline-sync threshold).
	SegmentBytes int
	SyncInterval time.Duration
	SyncBytes    int
}

// walState is the engine's view of its open write-ahead logs.
type walState struct {
	opts WALOptions
	logs map[string]*wal.Log
	// replayed tracks, per stream, the highest frame sequence number this
	// engine has already driven through the router — what makes a second
	// Recover a no-op even before a checkpoint is written.
	replayed map[string]uint64
}

// RecoveryInfo summarizes one Engine.Recover pass.
type RecoveryInfo struct {
	Streams        int   // stream logs found under the WAL directory
	Frames         int64 // frames replayed into the kernel
	Tuples         int64 // tuples those frames carried
	TruncatedBytes int64 // torn-tail bytes repaired away on open
}

// OpenWAL attaches a write-ahead log rooted at o.Dir to the engine. Call
// it after creating the stream baskets and before ListenIngest (listeners
// capture the log when they start) and Start (which auto-recovers).
func (e *Engine) OpenWAL(o WALOptions) error {
	if o.Dir == "" {
		return fmt.Errorf("datacell: OpenWAL needs a directory")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal != nil {
		return fmt.Errorf("datacell: WAL already open at %s", e.wal.opts.Dir)
	}
	e.wal = &walState{
		opts:     o,
		logs:     map[string]*wal.Log{},
		replayed: map[string]uint64{},
	}
	return nil
}

// walLogForLocked opens (or returns) the per-stream log. Caller holds
// e.mu. The returned OpenInfo is non-nil only when this call opened the
// log (repair happens then).
func (e *Engine) walLogForLocked(streamName string) (*wal.Log, *wal.OpenInfo, error) {
	w := e.wal
	if w == nil {
		return nil, nil, fmt.Errorf("datacell: WAL not open")
	}
	if lg, ok := w.logs[streamName]; ok {
		return lg, nil, nil
	}
	lg, info, err := wal.Open(filepath.Join(w.opts.Dir, streamName), wal.Options{
		SegmentBytes: w.opts.SegmentBytes,
		SyncInterval: w.opts.SyncInterval,
		SyncBytes:    w.opts.SyncBytes,
	})
	if err != nil {
		return nil, nil, err
	}
	w.logs[streamName] = lg
	return lg, info, nil
}

// Recover scans every stream log under the WAL directory, repairs torn
// tails, and replays the frames after each log's checkpoint through the
// stream's normal ingest target — the same route-at-ingest sinks receptor
// deliveries take, so partitioned wirings, pruning and two-phase
// aggregation see byte-identical input. It is idempotent: frames already
// replayed by this engine (or covered by a checkpoint) are skipped, so a
// double Recover is a no-op. Every stream with logged history must exist
// in the catalog; run the DDL script first.
func (e *Engine) Recover() (RecoveryInfo, error) {
	var info RecoveryInfo
	start := time.Now()
	e.mu.Lock()
	w := e.wal
	e.mu.Unlock()
	if w == nil {
		return info, fmt.Errorf("datacell: OpenWAL before Recover")
	}
	ents, err := os.ReadDir(w.opts.Dir)
	if err != nil {
		return info, err
	}
	var streams []string
	for _, ent := range ents {
		if ent.IsDir() {
			streams = append(streams, ent.Name())
		}
	}
	sort.Strings(streams)
	for _, streamName := range streams {
		frames, tuples, truncated, err := e.recoverStream(streamName)
		if err != nil {
			return info, err
		}
		info.Streams++
		info.Frames += frames
		info.Tuples += tuples
		info.TruncatedBytes += truncated
	}
	e.mu.Lock()
	cp := info
	e.lastRecovery = &cp
	e.ev.recoveries.Inc()
	e.trace.Add(obs.Event{Subsystem: "wal", Kind: "recover",
		Duration: time.Since(start), Time: e.cat.Now(),
		Fields: fmt.Sprintf("streams=%d frames=%d tuples=%d truncated_bytes=%d",
			info.Streams, info.Frames, info.Tuples, info.TruncatedBytes)})
	e.mu.Unlock()
	return info, nil
}

// recoverStream replays one stream's un-replayed WAL tail into its group
// target, batching appended frames like a receptor would.
func (e *Engine) recoverStream(streamName string) (frames, tuples, truncated int64, err error) {
	b := e.cat.Basket(streamName)
	if b == nil {
		return 0, 0, 0, fmt.Errorf("datacell: WAL holds history for stream %q, which is not in the catalog (run the DDL script before Recover)", streamName)
	}
	e.mu.Lock()
	lg, oinfo, err := e.walLogForLocked(streamName)
	if err != nil {
		e.mu.Unlock()
		return 0, 0, 0, err
	}
	g, err := e.groupLocked(streamName)
	if err != nil {
		e.mu.Unlock()
		return 0, 0, 0, err
	}
	tgt := g.target()
	from := lg.Checkpoint()
	if r := e.wal.replayed[streamName]; r > from {
		from = r
	}
	e.mu.Unlock()
	if oinfo != nil {
		truncated = oinfo.TruncatedBytes
	}

	names, types := b.UserSchema()
	rel := bat.NewEmptyRelation(names, types)
	br := bufio.NewReader(bytes.NewReader(nil))
	fr := ingest.NewFrameReader(br, types)
	flush := func() error {
		if rel.Len() == 0 {
			return nil
		}
		sink, release := tgt.Acquire()
		_, aerr := sink.Append(rel)
		release()
		rel.Clear()
		return aerr
	}
	last := from
	err = lg.Tail(from, func(seq uint64, frame []byte) error {
		br.Reset(bytes.NewReader(frame))
		n, derr := fr.DecodeFrameInto(rel)
		if derr != nil {
			return fmt.Errorf("datacell: replaying %s frame %d: %w", streamName, seq, derr)
		}
		frames++
		tuples += int64(n)
		last = seq
		if rel.Len() >= 1024 {
			return flush()
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	if err != nil {
		return frames, tuples, truncated, err
	}
	e.mu.Lock()
	if e.wal != nil && last > e.wal.replayed[streamName] {
		e.wal.replayed[streamName] = last
	}
	e.mu.Unlock()
	return frames, tuples, truncated, nil
}

// WALHistory returns the stream's logged history as textual tuple lines —
// the input format stream.Replayer consumes — starting after frame
// sequence number from (0 for everything on disk). It is how a
// late-registered query reads history from disk instead of memory. The
// live log is flushed first so recent frames are visible.
func (e *Engine) WALHistory(streamName string, from uint64) (io.ReadCloser, error) {
	e.mu.Lock()
	w := e.wal
	var lg *wal.Log
	if w != nil {
		lg = w.logs[streamName]
	}
	e.mu.Unlock()
	if w == nil {
		return nil, fmt.Errorf("datacell: WAL not open")
	}
	b := e.cat.Basket(streamName)
	if b == nil {
		return nil, fmt.Errorf("datacell: unknown stream %q", streamName)
	}
	if lg != nil {
		if err := lg.Sync(); err != nil {
			return nil, err
		}
	}
	_, types := b.UserSchema()
	return wal.LineSource(filepath.Join(w.opts.Dir, streamName), from, types), nil
}

// walLogsLocked snapshots the open logs. Caller holds e.mu.
func (e *Engine) walLogsLocked() []*wal.Log {
	if e.wal == nil {
		return nil
	}
	logs := make([]*wal.Log, 0, len(e.wal.logs))
	for _, lg := range e.wal.logs {
		logs = append(logs, lg)
	}
	return logs
}

// checkpointWAL writes a checkpoint to every open stream log. Crashed or
// failed logs refuse (a crash must replay); their error is ignored here
// because checkpointing is an optimization, never a correctness
// requirement.
func (e *Engine) checkpointWAL(close bool) {
	e.mu.Lock()
	logs := e.walLogsLocked()
	if close && e.wal != nil {
		// Closed logs are forgotten so a later listener reopens them.
		e.wal.logs = map[string]*wal.Log{}
	}
	e.mu.Unlock()
	for _, lg := range logs {
		lg.WriteCheckpoint() //nolint:errcheck // see doc comment
		if close {
			lg.Close()
		}
	}
}

// Kill simulates abrupt process death, for crash-recovery testing: ingest
// sockets close, the scheduler and sampler stop, and every WAL log drops
// its buffered-unflushed records without a checkpoint — exactly the disk
// state a kill -9 leaves behind. Unlike Stop, nothing is flushed, synced
// or checkpointed, so a restarted engine must Recover.
func (e *Engine) Kill() {
	e.mu.Lock()
	started := e.started
	e.started = false
	var ins []*IngestListener
	for _, g := range e.groups {
		ins = append(ins, g.listeners...)
	}
	logs := e.walLogsLocked()
	if e.wal != nil {
		e.wal.logs = map[string]*wal.Log{}
	}
	touts := append([]*stream.TCPEmitter(nil), e.tcpOut...)
	qes := e.subEmittersLocked()
	stop, done := e.adaptStop, e.adaptDone
	e.adaptStop, e.adaptDone = nil, nil
	e.mu.Unlock()
	// Crash the logs before the sockets close: a receptor mid-delivery
	// must see the log refuse, not sneak in a post-mortem append.
	for _, lg := range logs {
		lg.Crash()
	}
	if stop != nil {
		close(stop)
		<-done
	}
	for _, l := range ins {
		l.Close()
	}
	if started {
		e.sch.Stop()
	}
	for _, t := range touts {
		t.Close()
	}
	for _, qe := range qes {
		qe.em.Stop()
	}
}
