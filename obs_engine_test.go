// Engine-level observability tests: the /metrics surface, the event
// trace, explain analyze, live latency histograms, the admin HTTP server
// and snapshot consistency under wiring churn.
package datacell

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"datacell/internal/bat"
)

// obsTestEngine builds an engine with a WAL, an ingest listener, a
// partitioned two-phase query and a plain query, feeds it and drains it —
// touching every instrumented subsystem.
func obsTestEngine(t *testing.T) *Engine {
	t.Helper()
	eng := New()
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenWAL(WALOptions{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("agg", `select t.k, sum(t.v) from [select * from s] t group by t.k`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("flt", `select t.v from [select * from s] t where t.v < 50`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Subscribe("flt", func(Table) {}); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetParallelism(2); err != nil {
		t.Fatal(err)
	}
	l, err := eng.ListenIngest("s", "127.0.0.1:0", IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Stop)
	conn, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		fmt.Fprintf(conn, "%d|%d\n", i%4, i)
	}
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := eng.Snapshot()
		var tuples int64
		for _, is := range st.Ingest {
			tuples += is.Tuples
		}
		if tuples >= 200 && eng.Drain(time.Second) {
			return eng
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("ingest did not deliver 200 tuples in time")
	return nil
}

// TestWriteMetricsCoversSubsystems asserts the exposition covers all
// seven instrumented subsystems: ingest, wal, basket, kernel (query),
// merge, adapt and engine events — including the per-query latency
// summary quantiles.
func TestWriteMetricsCoversSubsystems(t *testing.T) {
	eng := obsTestEngine(t)
	var b strings.Builder
	eng.WriteMetrics(&b)
	text := b.String()
	for _, want := range []string{
		`datacell_ingest_tuples_total{stream="s"}`,
		`datacell_ingest_route_seconds_total{stream="s"}`,
		`datacell_wal_frames_total{stream="s"}`,
		`datacell_wal_commit_batches_total{stream="s"}`,
		`datacell_basket_highwater{stream="s"}`,
		`datacell_query_fires_total{query="agg"}`,
		`datacell_query_busy_seconds_total{query="flt"}`,
		`datacell_merge_barrier_waits_total{query="agg"}`,
		`datacell_query_latency_seconds{query="agg",quantile="0.99"}`,
		`datacell_query_latency_seconds_count{query="flt"}`,
		"datacell_adapt_decisions_total",
		"datacell_engine_rewires_total",
		"datacell_engine_events_total",
		"datacell_engine_queries 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full output:\n%s", text)
	}
}

// TestLatencyHistogramRecords asserts the in-engine ingest-to-emit
// histograms fill from receptor-stamped tuples and surface through
// Stats/QueryStats.
func TestLatencyHistogramRecords(t *testing.T) {
	eng := obsTestEngine(t)
	for _, q := range eng.Stats() {
		if q.LatCount == 0 {
			t.Errorf("query %s: no latency samples recorded", q.Name)
			continue
		}
		if q.LatP50 <= 0 || q.LatMax < q.LatP50 {
			t.Errorf("query %s: implausible quantiles p50=%v max=%v", q.Name, q.LatP50, q.LatMax)
		}
	}
}

// TestExplainAnalyzeStages drives the SQL surface end to end: `explain
// analyze <query>` returns the stage-timing breakdown in QueryInfo.Text.
func TestExplainAnalyzeStages(t *testing.T) {
	eng := obsTestEngine(t)
	infos, err := eng.Exec(`explain analyze agg`)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("got %d infos, want 1", len(infos))
	}
	text := infos[0].Text
	for _, want := range []string{"stage route:", "stage fire:", "stage merge:", "stage emit:", "latency (ingest to emit):"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain analyze output missing %q in:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "barrier waits") {
		t.Errorf("two-phase query should report merge barrier activity:\n%s", text)
	}
	if strings.Contains(text, "no samples yet") {
		t.Errorf("explain analyze should see latency samples:\n%s", text)
	}
	if _, err := eng.Exec(`explain analyze nosuch`); err == nil {
		t.Error("explain analyze of unknown query should fail")
	}
	// The plain form still works through SQL and reports wiring.
	infos, err = eng.Exec(`explain select t.v from [select * from s] t where t.v < 9`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(infos[0].Text, "wiring:") {
		t.Errorf("plain explain missing wiring section:\n%s", infos[0].Text)
	}
}

// TestEventTrace asserts registrations, rewires and removals land in the
// trace ring with reasons, and that Snapshot.EventsTotal tracks it.
func TestEventTrace(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.v from [select * from s] t where t.v > 1`); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetStrategy(StrategyShared); err != nil {
		t.Fatal(err)
	}
	if err := eng.RemoveQuery("q"); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	var strategyRewire bool
	for _, ev := range eng.Events() {
		kinds[ev.Subsystem+"/"+ev.Kind]++
		if ev.Kind == "rewire" && strings.Contains(ev.Reason, "strategy switched to shared") {
			strategyRewire = true
		}
	}
	for _, want := range []string{"engine/register", "engine/rewire", "engine/remove"} {
		if kinds[want] == 0 {
			t.Errorf("trace missing %s events (have %v)", want, kinds)
		}
	}
	if !strategyRewire {
		t.Error("strategy-switch rewire should carry its reason")
	}
	if got := eng.Snapshot().EventsTotal; got < uint64(len(eng.Events())) {
		t.Errorf("EventsTotal %d < retained events %d", got, len(eng.Events()))
	}
}

// TestAdminEndpoints starts the admin server and exercises every route.
func TestAdminEndpoints(t *testing.T) {
	eng := obsTestEngine(t)
	a, err := eng.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + a.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "datacell_query_fires_total") {
		t.Errorf("/metrics: code %d, body %.200s", code, body)
	}
	if code, body := get("/snapshot"); code != 200 || !strings.Contains(body, `"Queries"`) {
		t.Errorf("/snapshot: code %d, body %.200s", code, body)
	} else {
		var s map[string]any
		if err := json.Unmarshal([]byte(body), &s); err != nil {
			t.Errorf("/snapshot is not valid JSON: %v", err)
		}
	}
	if code, body := get("/events"); code != 200 || !strings.Contains(body, `"rewire"`) {
		t.Errorf("/events: code %d, body %.200s", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d, body %.200s", code, body)
	}
	if _, err := eng.ServeAdmin("127.0.0.1:0"); err == nil {
		t.Error("second ServeAdmin should refuse")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the engine accepts a fresh admin server; Stop closes it.
	b, err := eng.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_ = b
}

// TestSnapshotConsistentUnderChurn encodes snapshots while the adaptive
// controller, strategy switches and appends churn the wiring: every
// snapshot must be internally consistent (both queries present, valid
// strategy, monotonic EventsTotal) and JSON-encodable.
func TestSnapshotConsistentUnderChurn(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"a", "b"} {
		if err := eng.RegisterQuery(q, `select t.k, sum(t.v) from [select * from s] t group by t.k`); err != nil {
			t.Fatal(err)
		}
	}
	eng.SetAdaptOptions(AdaptOptions{Tick: time.Millisecond})
	if _, err := eng.Exec(`set parallelism = auto`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // ingest load so the controller has something to chew on
		defer wg.Done()
		rows := make([]Row, 64)
		for i := range rows {
			rows[i] = Row{int64(i % 8), int64(i)}
		}
		for {
			select {
			case <-stop:
				return
			default:
				eng.Append("s", rows...) //nolint:errcheck
			}
		}
	}()
	go func() { // wiring churn beyond the controller's own rewires
		defer wg.Done()
		strats := []Strategy{StrategyShared, StrategySeparate}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				eng.SetStrategy(strats[i%len(strats)]) //nolint:errcheck
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	var lastTotal uint64
	var prev []byte
	for i := 0; i < 50; i++ {
		s := eng.Snapshot()
		if len(s.Queries) != 2 {
			t.Fatalf("snapshot %d: %d queries, want 2", i, len(s.Queries))
		}
		switch s.Strategy {
		case StrategySeparate, StrategyShared, StrategyPartial:
		default:
			t.Fatalf("snapshot %d: invalid strategy %q", i, s.Strategy)
		}
		if s.EventsTotal < lastTotal {
			t.Fatalf("snapshot %d: EventsTotal went backwards (%d < %d)", i, s.EventsTotal, lastTotal)
		}
		lastTotal = s.EventsTotal
		enc, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("snapshot %d: encode: %v", i, err)
		}
		// Two consecutive encodes must both be complete documents; a torn
		// snapshot would show up as sections disagreeing about the wiring.
		if i > 0 && len(prev) == 0 {
			t.Fatalf("snapshot %d: empty encoding", i)
		}
		prev = enc
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// TestFiringWithMetricsStaysInBudget re-asserts the firing-cycle
// allocation budget with the latency instrumentation demonstrably live:
// the histogram must have recorded during the measured cycles.
func TestFiringWithMetricsStaysInBudget(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int, w int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("q", `select t.v, t.w from [select * from s] t where t.v < 100`); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Out("q")
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{int64(i % 200), int64(i)}
	}
	var spare *bat.Relation
	cycle := func() {
		if err := eng.Append("s", rows...); err != nil {
			t.Fatal(err)
		}
		if err := eng.RunSync(); err != nil {
			t.Fatal(err)
		}
		out.Lock()
		spare = out.ExchangeLocked(spare)
		out.Unlock()
	}
	for i := 0; i < 5; i++ {
		cycle()
	}
	before := int64(0)
	for _, q := range eng.Stats() {
		before = q.LatCount
	}
	allocs := testing.AllocsPerRun(100, cycle)
	after := int64(0)
	for _, q := range eng.Stats() {
		after = q.LatCount
	}
	if after <= before {
		t.Fatalf("latency histogram did not record during measured cycles (%d -> %d)", before, after)
	}
	if allocs > 150 {
		t.Fatalf("firing cycle with metrics allocates %.1f per run, budget 150", allocs)
	}
}
