package main

import (
	"testing"
	"time"
)

func TestParseScenario(t *testing.T) {
	phases, err := ParseScenario(
		"warm:3s:rate=30000,conns=4;" +
			"ramp:5s:rate=30000..120000,conns=8,churn=250ms,flips=500ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("phases = %d", len(phases))
	}
	w := phases[0]
	if w.Name != "warm" || w.Duration != 3*time.Second || w.Rate != 30000 || w.RateEnd != 30000 || w.Conns != 4 {
		t.Fatalf("warm = %+v", w)
	}
	if w.ChurnEvery != 0 || w.FlipEvery != 0 {
		t.Fatalf("warm churn/flips should be off: %+v", w)
	}
	r := phases[1]
	if r.Rate != 30000 || r.RateEnd != 120000 || r.Conns != 8 {
		t.Fatalf("ramp = %+v", r)
	}
	if r.ChurnEvery != 250*time.Millisecond || r.FlipEvery != 500*time.Millisecond {
		t.Fatalf("ramp churn/flips = %+v", r)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	bad := []string{
		"",                            // no phases
		"x:3s",                        // missing options
		"x:3s:conns=2",                // rate required
		"x:0s:rate=100",               // zero duration
		"x:1s:rate=nope",              // bad rate
		"x:1s:rate=100..0",            // bad ramp end
		"x:1s:rate=100,conns=0",       // bad conns
		"x:1s:rate=100,bogus=1",       // unknown key
		"x:1s:rate=100;x:1s:rate=100", // duplicate names
		"x:1s:rate=100,churn=-1s",     // bad churn
	}
	for _, spec := range bad {
		if _, err := ParseScenario(spec); err == nil {
			t.Errorf("ParseScenario(%q) accepted", spec)
		}
	}
}

func TestPresetsParse(t *testing.T) {
	for name, spec := range presets {
		phases, err := ParseScenario(spec)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if len(phases) < 3 {
			t.Fatalf("preset %s: only %d phases", name, len(phases))
		}
	}
	if _, err := resolveScenario("nope", ""); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := resolveScenario("smoke", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRateAt(t *testing.T) {
	ph := Phase{Rate: 1000, RateEnd: 8000}
	if got := ph.rateAt(0); got != 1000 {
		t.Fatalf("rateAt(0) = %g", got)
	}
	if got := ph.rateAt(rampSteps - 1); got != 8000 {
		t.Fatalf("rateAt(last) = %g", got)
	}
	flat := Phase{Rate: 500, RateEnd: 500}
	if got := flat.rateAt(3); got != 500 {
		t.Fatalf("flat rateAt = %g", got)
	}
	if got := ph.offeredMean(); got != 4500 {
		t.Fatalf("offeredMean = %g", got)
	}
}
