// Command datacellbench is the open-loop mixed-workload driver with
// latency SLOs — the response-time half of the Linear Road evaluation
// (paper Figures 7–9), where every benchmark before it was a closed-loop
// throughput sweep. Load arrives on a fixed schedule whether or not the
// engine keeps up: rate-limited senders (token-bucket paced binary
// connections over the sharded ingest listeners) hold the offered rate
// constant, so queue depth, schedule lag and receptor stall time are
// measurements, never throttles.
//
// A scenario is a sequence of phases mixing ingest rate ramps, query
// churn (register/deregister with live subscriptions), and
// strategy/parallelism pragma flips — live rewires under load. Every
// tuple carries its send timestamp; subscriptions on the continuous
// queries receive Emit metadata (EmitTime), and the difference is the
// ingest-to-emit latency, accumulated per phase in HDR-style histograms
// and reported as p50/p99/p99.9 plus achieved events/s, written to
// BENCH_latency.json for the benchgate -latency-baseline CI gate.
//
// Usage:
//
//	datacellbench -preset smoke                  # short CI scenario
//	datacellbench -preset mix                    # full committed baseline
//	datacellbench -scenario 'ramp:5s:rate=30000..120000,conns=8,churn=250ms'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"datacell"
	"datacell/internal/bat"
	"datacell/internal/histo"
	"datacell/internal/ingest"
	"datacell/internal/provenance"
	"datacell/internal/stream"
	"datacell/internal/vector"
)

var (
	schemaNames = []string{"k", "v", "sts"}
	schemaTypes = []vector.Type{vector.Int, vector.Int, vector.Int}
)

// latencyRow is one phase's report in BENCH_latency.json.
type latencyRow struct {
	Phase       string  `json:"phase"`
	DurationS   float64 `json:"duration_s"`
	Conns       int     `json:"conns"`
	OfferedEPS  float64 `json:"offered_eps"`
	AchievedEPS float64 `json:"achieved_eps"`
	Sent        int64   `json:"sent"`
	Offered     int64   `json:"offered"`
	Backlog     int64   `json:"backlog"` // offered - sent when the senders fell behind
	Samples     int64   `json:"samples"` // latency samples (result rows carrying timestamps)
	Emits       int64   `json:"emits"`   // result batches delivered to subscriptions
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	P999us      float64 `json:"p999_us"`
	MaxUs       float64 `json:"max_us"`
	StallMs     float64 `json:"stall_ms"`   // sender time blocked in socket writes
	MaxLagMs    float64 `json:"max_lag_ms"` // worst schedule slip of any sender
}

type latencyDoc struct {
	Fig        string          `json:"fig"`
	Scenario   string          `json:"scenario"`
	Rows       []latencyRow    `json:"rows"`
	Provenance provenance.Info `json:"provenance"`
}

// recorder accumulates ingest-to-emit latency into the current phase's
// histogram. Emit callbacks run on emitter threads concurrently with the
// main loop switching phases, so everything is atomic.
type recorder struct {
	phase atomic.Int32
	hists []*histo.H
	emits []atomic.Int64
}

func newRecorder(phases int) *recorder {
	r := &recorder{hists: make([]*histo.H, phases), emits: make([]atomic.Int64, phases)}
	for i := range r.hists {
		r.hists[i] = &histo.H{}
	}
	return r
}

// onEmit is the subscription callback: every result row's sts column
// (sender UnixMicro timestamp) against the emit time.
func (r *recorder) onEmit(em datacell.Emit) {
	sts := -1
	for i, c := range em.Table.Cols {
		if c == "sts" {
			sts = i
			break
		}
	}
	if sts < 0 {
		return
	}
	p := r.phase.Load()
	h := r.hists[p]
	r.emits[p].Add(1)
	for _, row := range em.Table.Rows {
		us, ok := row[sts].(int64)
		if !ok {
			continue
		}
		h.Record(em.EmitTime.Sub(time.UnixMicro(us)))
	}
}

// measured queries: "all" sees every tuple (the latency workhorse),
// "hot" a ~10% slice — both project the sender timestamp through.
var baseQueries = []struct{ name, src string }{
	{"all", `select t.k, t.v, t.sts from [select * from s] t where t.v >= 0`},
	{"hot", `select t.k, t.v, t.sts from [select * from s] t where t.v < 100`},
}

// flipCycle are the pragmas a flips-enabled phase cycles through: live
// strategy rewires, static parallelism switches and the adaptive
// controller, all under full offered load.
var flipCycle = []string{
	`set strategy = 'shared'`,
	`set parallelism = 2`,
	`set strategy = 'partial'`,
	`set parallelism = auto`,
	`set strategy = 'separate'`,
	`set parallelism = 1`,
}

func main() {
	preset := flag.String("preset", "mix", "built-in scenario: smoke (CI) or mix (baseline)")
	scenario := flag.String("scenario", "", "inline scenario spec (overrides -preset); see ParseScenario")
	out := flag.String("out", "BENCH_latency.json", "output JSON path ('' to skip)")
	shards := flag.Int("shards", 4, "ingest listener shards")
	batch := flag.Int("batch", 256, "tuples per wire frame")
	drainTimeout := flag.Duration("drain", 30*time.Second, "per-phase and final drain timeout")
	flag.Parse()

	phases, err := resolveScenario(*preset, *scenario)
	if err != nil {
		fatal(err)
	}
	rows, snap, err := run(phases, *shards, *batch, *drainTimeout)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%-8s %8s %10s %10s %9s %9s %9s %9s %9s %8s\n",
		"phase", "conns", "offered/s", "achieved/s", "p50", "p99", "p99.9", "max", "stall", "backlog")
	for _, r := range rows {
		fmt.Printf("%-8s %8d %10.0f %10.0f %8.0fµ %8.0fµ %8.0fµ %8.0fµ %7.0fms %8d\n",
			r.Phase, r.Conns, r.OfferedEPS, r.AchievedEPS, r.P50us, r.P99us, r.P999us, r.MaxUs, r.StallMs, r.Backlog)
	}
	fmt.Printf("engine: strategy=%s P=%d auto=%v queries=%d subscriptions=%d\n",
		snap.Strategy, snap.Parallelism, snap.AutoParallelism, len(snap.Queries), snap.Subscriptions)
	for _, g := range snap.Groups {
		fmt.Printf("group %s: strategy=%s partitions=%d rewires=%d ingest=%d stalls=%d stall_time=%v\n",
			g.Stream, g.Strategy, g.Partitions, g.Rewires, g.IngestTuples, g.IngestStalls, g.IngestStallTime)
	}

	if *out != "" {
		spec := *scenario
		if spec == "" {
			spec = *preset
		}
		doc := latencyDoc{Fig: "latency", Scenario: spec, Rows: rows, Provenance: provenance.Capture()}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datacellbench: %v\n", err)
	os.Exit(1)
}

// run executes the scenario against a fresh in-process engine fed over
// loopback TCP and returns the per-phase rows plus the engine's final
// snapshot.
func run(phases []Phase, shards, batch int, drainTimeout time.Duration) ([]latencyRow, datacell.Snapshot, error) {
	var zero datacell.Snapshot
	eng := datacell.New(datacell.WithStrategy(datacell.StrategySeparate), datacell.WithParallelism(1))
	defer eng.Stop()
	if _, err := eng.Exec(`create basket s (k int, v int, sts int)`); err != nil {
		return nil, zero, err
	}
	rec := newRecorder(len(phases))
	for _, q := range baseQueries {
		if err := eng.RegisterQuery(q.name, q.src); err != nil {
			return nil, zero, err
		}
		if _, err := eng.SubscribeQuery(q.name, datacell.SubscribeOptions{OnEmit: rec.onEmit}); err != nil {
			return nil, zero, err
		}
	}
	lst, err := eng.ListenIngest("s", "127.0.0.1:0", datacell.IngestOptions{Shards: shards, BatchSize: batch})
	if err != nil {
		return nil, zero, err
	}
	if err := eng.Start(); err != nil {
		return nil, zero, err
	}
	addrs := lst.Addrs()

	var churnCtr atomic.Int64
	rows := make([]latencyRow, 0, len(phases))
	for pi, ph := range phases {
		rec.phase.Store(int32(pi))
		phaseStart := time.Now()
		ingBefore := ingestedTuples(lst)

		// Paced senders: the offered rate split across the connections,
		// each dialing its own shard round-robin.
		stop := make(chan struct{})
		senders := make([]*ingest.PacedSender, ph.Conns)
		stats := make([]ingest.PacedStats, ph.Conns)
		errs := make([]error, ph.Conns)
		var wg sync.WaitGroup
		for c := 0; c < ph.Conns; c++ {
			d := &stream.Dialer{Addr: addrs[c%len(addrs)]}
			s := ingest.NewPacedSender(d, schemaNames, schemaTypes, ph.Rate/float64(ph.Conns), batch)
			senders[c] = s
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				stats[c], errs[c] = s.Run(stop, fillTuples)
			}(c)
		}

		// Background churn, flips and rate ramp for the phase's duration.
		bgStop := make(chan struct{})
		var bg sync.WaitGroup
		if ph.ChurnEvery > 0 {
			bg.Add(1)
			go func() { defer bg.Done(); churn(eng, rec, &churnCtr, ph.ChurnEvery, bgStop) }()
		}
		if ph.FlipEvery > 0 {
			bg.Add(1)
			go func() { defer bg.Done(); flip(eng, ph.FlipEvery, bgStop) }()
		}
		if ph.RateEnd != ph.Rate {
			bg.Add(1)
			go func() { defer bg.Done(); ramp(senders, ph, bgStop) }()
		}

		time.Sleep(ph.Duration)
		close(bgStop)
		bg.Wait()
		close(stop)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, zero, fmt.Errorf("phase %s: %w", ph.Name, err)
			}
		}

		// Absorb the phase's backlog before the next phase starts, so its
		// emits land in this phase's histogram: wait until the receptors
		// have delivered everything the senders wrote, then drain the
		// kernel.
		var sent int64
		for _, st := range stats {
			sent += st.Tuples
		}
		if err := awaitIngested(lst, ingBefore+sent, drainTimeout); err != nil {
			return nil, zero, fmt.Errorf("phase %s: %w", ph.Name, err)
		}
		if !eng.Drain(drainTimeout) {
			return nil, zero, fmt.Errorf("phase %s: kernel did not drain", ph.Name)
		}

		elapsed := time.Since(phaseStart)
		row := latencyRow{
			Phase:       ph.Name,
			DurationS:   ph.Duration.Seconds(),
			Conns:       ph.Conns,
			OfferedEPS:  ph.offeredMean(),
			AchievedEPS: float64(ingestedTuples(lst)-ingBefore) / elapsed.Seconds(),
			Sent:        sent,
			Samples:     rec.hists[pi].Count(),
			Emits:       rec.emits[pi].Load(),
			P50us:       usQuantile(rec.hists[pi], 0.50),
			P99us:       usQuantile(rec.hists[pi], 0.99),
			P999us:      usQuantile(rec.hists[pi], 0.999),
			MaxUs:       float64(rec.hists[pi].Max()) / 1e3,
		}
		var maxLag time.Duration
		for _, st := range stats {
			row.Offered += st.Offered
			row.StallMs += st.StallTime.Seconds() * 1e3
			if st.MaxLag > maxLag {
				maxLag = st.MaxLag
			}
		}
		if row.Offered > row.Sent {
			row.Backlog = row.Offered - row.Sent
		}
		row.MaxLagMs = maxLag.Seconds() * 1e3
		rows = append(rows, row)
	}

	snap := eng.Snapshot()
	return rows, snap, nil
}

// fillTuples generates one batch: a running key, a deterministic value in
// [0,1000) selecting each query's slice, and the send timestamp every
// latency sample derives from.
func fillTuples(rel *bat.Relation, base int64, n int) {
	now := time.Now().UnixMicro()
	for i := 0; i < n; i++ {
		k := base + int64(i)
		v := (k * 2654435761) % 1000
		if v < 0 {
			v += 1000
		}
		rel.AppendRow(vector.NewInt(k), vector.NewInt(v), vector.NewInt(now))
	}
}

// churn registers a fresh continuous query with a live subscription and
// removes the previous one at each tick — the register/deregister +
// subscribe/auto-cancel axis of the mix.
func churn(eng *datacell.Engine, rec *recorder, ctr *atomic.Int64, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	prev := ""
	for {
		select {
		case <-stop:
			if prev != "" {
				eng.RemoveQuery(prev) //nolint:errcheck // best-effort teardown
			}
			return
		case <-t.C:
			name := fmt.Sprintf("churn_%d", ctr.Add(1))
			src := `select t.k, t.sts from [select * from s] t where t.v < 50`
			if err := eng.RegisterQuery(name, src); err != nil {
				continue
			}
			if _, err := eng.SubscribeQuery(name, datacell.SubscribeOptions{OnEmit: rec.onEmit}); err == nil {
				if prev != "" {
					eng.RemoveQuery(prev) //nolint:errcheck // raced rewire; next tick retires it
				}
				prev = name
			}
		}
	}
}

// flip cycles strategy/parallelism pragmas — live rewires under load.
func flip(eng *datacell.Engine, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	i := 0
	for {
		select {
		case <-stop:
			// Park the engine back on the default wiring so the next phase
			// starts from a known state.
			eng.Exec(`set strategy = 'separate'`) //nolint:errcheck
			eng.Exec(`set parallelism = 1`)       //nolint:errcheck
			return
		case <-t.C:
			eng.Exec(flipCycle[i%len(flipCycle)]) //nolint:errcheck // invalid combos are part of the stress
			i++
		}
	}
}

// ramp steps the senders' offered rate through the phase's linear ramp.
func ramp(senders []*ingest.PacedSender, ph Phase, stop <-chan struct{}) {
	step := ph.Duration / rampSteps
	t := time.NewTicker(step)
	defer t.Stop()
	for i := 1; i < rampSteps; i++ {
		select {
		case <-stop:
			return
		case <-t.C:
			per := ph.rateAt(i) / float64(len(senders))
			for _, s := range senders {
				s.SetRate(per)
			}
		}
	}
}

func ingestedTuples(l *datacell.IngestListener) int64 {
	var n int64
	for _, st := range l.Stats() {
		n += st.Tuples
	}
	return n
}

// awaitIngested polls until the listener has delivered at least want
// tuples into the kernel.
func awaitIngested(l *datacell.IngestListener, want int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if got := ingestedTuples(l); got >= want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("receptors stalled at %d/%d tuples", ingestedTuples(l), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func usQuantile(h *histo.H, q float64) float64 {
	return float64(h.Quantile(q)) / 1e3
}
