package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Phase is one step of the scripted open-loop mix: a duration, an offered
// ingest rate (optionally ramping linearly to RateEnd), a connection
// count, and optional background churn — query register/deregister and
// strategy/parallelism pragma flips — running while the load is applied.
type Phase struct {
	Name     string
	Duration time.Duration
	// Rate and RateEnd are offered events/second at the start and end of
	// the phase. RateEnd == Rate means a flat phase; otherwise the rate
	// ramps in rampSteps linear steps. The rate is open-loop: the
	// schedule holds whether or not the engine keeps up.
	Rate    float64
	RateEnd float64
	// Conns is how many concurrent paced connections carry the load,
	// spread round-robin across the listener's shards.
	Conns int
	// ChurnEvery registers a fresh continuous query (with a subscription)
	// and removes the previous one at this period. Zero disables churn.
	ChurnEvery time.Duration
	// FlipEvery cycles through strategy/parallelism pragmas at this
	// period — live rewires under load. Zero disables flips.
	FlipEvery time.Duration
}

// rampSteps is how many rate plateaus a ramp phase is divided into.
const rampSteps = 8

// presets are the built-in scenarios. "smoke" is sized for CI — short,
// modest rates a shared runner sustains — and is also what the committed
// BENCH_latency.json baseline is generated with, so the latency gate
// compares phases measured under identical offered load. "mix" is the
// full mixed workload for measuring on a fixed box.
var presets = map[string]string{
	"smoke": "warm:2s:rate=20000,conns=2;" +
		"churn:2s:rate=20000,conns=2,churn=300ms;" +
		"flips:2s:rate=20000,conns=2,flips=500ms",
	"mix": "warm:3s:rate=30000,conns=4;" +
		"ramp:5s:rate=30000..120000,conns=8;" +
		"churn:4s:rate=60000,conns=8,churn=250ms;" +
		"flips:4s:rate=60000,conns=8,flips=500ms;" +
		"storm:5s:rate=80000,conns=16,churn=300ms,flips=700ms",
}

// ParseScenario parses a scenario spec: semicolon-separated phases of the
// form
//
//	name:duration:key=value[,key=value…]
//
// with keys rate (events/s, "lo..hi" for a linear ramp), conns, churn
// (period) and flips (period), e.g.
//
//	warm:3s:rate=30000,conns=4;ramp:5s:rate=30000..120000,conns=8,churn=250ms
func ParseScenario(spec string) ([]Phase, error) {
	var phases []Phase
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.SplitN(raw, ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("phase %q: want name:duration:options", raw)
		}
		ph := Phase{Name: strings.TrimSpace(parts[0]), Conns: 1}
		if ph.Name == "" {
			return nil, fmt.Errorf("phase %q: empty name", raw)
		}
		d, err := time.ParseDuration(strings.TrimSpace(parts[1]))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("phase %q: bad duration %q", ph.Name, parts[1])
		}
		ph.Duration = d
		for _, kv := range strings.Split(parts[2], ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("phase %q: bad option %q", ph.Name, kv)
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			switch k {
			case "rate":
				lo, hi, ramp := strings.Cut(v, "..")
				ph.Rate, err = strconv.ParseFloat(lo, 64)
				if err == nil && ramp {
					ph.RateEnd, err = strconv.ParseFloat(hi, 64)
				}
				if err != nil || ph.Rate <= 0 || (ramp && ph.RateEnd <= 0) {
					return nil, fmt.Errorf("phase %q: bad rate %q", ph.Name, v)
				}
				if !ramp {
					ph.RateEnd = ph.Rate
				}
			case "conns":
				ph.Conns, err = strconv.Atoi(v)
				if err != nil || ph.Conns < 1 {
					return nil, fmt.Errorf("phase %q: bad conns %q", ph.Name, v)
				}
			case "churn":
				ph.ChurnEvery, err = time.ParseDuration(v)
				if err != nil || ph.ChurnEvery <= 0 {
					return nil, fmt.Errorf("phase %q: bad churn %q", ph.Name, v)
				}
			case "flips":
				ph.FlipEvery, err = time.ParseDuration(v)
				if err != nil || ph.FlipEvery <= 0 {
					return nil, fmt.Errorf("phase %q: bad flips %q", ph.Name, v)
				}
			default:
				return nil, fmt.Errorf("phase %q: unknown option %q", ph.Name, k)
			}
		}
		if ph.Rate <= 0 {
			return nil, fmt.Errorf("phase %q: rate is required", ph.Name)
		}
		phases = append(phases, ph)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("scenario has no phases")
	}
	seen := map[string]bool{}
	for _, ph := range phases {
		if seen[ph.Name] {
			return nil, fmt.Errorf("duplicate phase name %q", ph.Name)
		}
		seen[ph.Name] = true
	}
	return phases, nil
}

// resolveScenario returns the preset named by preset, unless spec
// overrides it with an inline scenario.
func resolveScenario(preset, spec string) ([]Phase, error) {
	if spec == "" {
		p, ok := presets[preset]
		if !ok {
			return nil, fmt.Errorf("unknown preset %q (have: smoke, mix)", preset)
		}
		spec = p
	}
	return ParseScenario(spec)
}

// rateAt interpolates a ramp phase's offered rate at step (0-based) of
// rampSteps plateaus.
func (ph Phase) rateAt(step int) float64 {
	if ph.RateEnd == ph.Rate || rampSteps == 1 {
		return ph.Rate
	}
	f := float64(step) / float64(rampSteps-1)
	return ph.Rate + (ph.RateEnd-ph.Rate)*f
}

// offeredMean is the average offered rate over the phase (what the
// schedule asks for in total, divided by duration).
func (ph Phase) offeredMean() float64 { return (ph.Rate + ph.RateEnd) / 2 }
