// Command linearroad runs the Linear Road benchmark on the DataCell in
// simulated time and prints the series behind the paper's Figures 7, 8
// and 9, plus the validation report.
//
//	linearroad -sf 1 -fig all          full three-hour run at scale factor 1
//	linearroad -sf 0.5 -fig 9          Figure 9 series only
//	linearroad -sf 0.3 -duration 1200  shortened run for quick checks
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"datacell/internal/lroad"
)

func main() {
	sf := flag.Float64("sf", 0.5, "scale factor (paper: 0.5 and 1)")
	duration := flag.Int64("duration", 10800, "benchmark seconds (paper: 10800)")
	seed := flag.Int64("seed", 1, "generator seed")
	fig := flag.String("fig", "all", "figure to print: 7, 8, 9, all")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	cfg := lroad.DefaultConfig(*sf)
	cfg.Duration = *duration
	cfg.Seed = *seed

	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	fmt.Fprintf(os.Stderr, "running Linear Road: SF %.2f, %d benchmark seconds…\n", *sf, *duration)
	start := time.Now()
	res, err := lroad.Run(cfg, progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linearroad: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "done in %v wall clock; %d input tuples\n", time.Since(start).Round(time.Millisecond), res.TotalIn)

	if *fig == "7" || *fig == "all" {
		fmt.Println("# Figure 7: avg processing time (ms) per collection per benchmark minute")
		names := make([]string, 0, len(res.Load))
		for n := range res.Load {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Print("minute")
		for _, n := range names {
			fmt.Printf("\t%s", n)
		}
		fmt.Println()
		series := map[string]map[int64]float64{}
		maxMin := int64(0)
		for _, n := range names {
			series[n] = map[int64]float64{}
			for _, p := range res.LoadSeries(n) {
				series[n][p.Minute] = p.Value
				if p.Minute > maxMin {
					maxMin = p.Minute
				}
			}
		}
		for m := int64(0); m <= maxMin; m++ {
			fmt.Printf("%d", m)
			for _, n := range names {
				fmt.Printf("\t%.3f", series[n][m])
			}
			fmt.Println()
		}
		fmt.Println("# worst per-activation processing time (deadline check):")
		for _, n := range names {
			fmt.Printf("#   %s: %v\n", n, res.MaxProc[n])
		}
	}
	if *fig == "8" || *fig == "all" {
		fmt.Println("# Figure 8: incoming tuples per second vs benchmark minute (sampled per minute)")
		fmt.Println("minute\ttuples_per_sec")
		for s := 0; s < len(res.TuplesPerSec); s += 60 {
			fmt.Printf("%d\t%d\n", s/60, res.TuplesPerSec[s])
		}
	}
	if *fig == "9" || *fig == "all" {
		fmt.Println("# Figure 9: Q7 average response time (ms) vs benchmark minute")
		fmt.Println("minute\tavg_ms")
		for _, p := range res.Q7AvgSeries() {
			fmt.Printf("%d\t%.3f\n", p.Minute, p.Value)
		}
	}

	v := lroad.Validate(res)
	fmt.Printf("# validation: %d/%d accidents detected, %d cleared; %d toll alerts, %d accident alerts, %d balance answers, %d daily answers\n",
		v.DetectedAccidents, v.ExpectedAccidents, v.ClearedAccidents,
		res.TollAlerts.Len(), res.AccAlerts.Len(), res.BalAnswers.Len(), res.DayAnswers.Len())
	if !v.OK() {
		for _, e := range v.Errors {
			fmt.Fprintf(os.Stderr, "validation error: %s\n", e)
		}
		os.Exit(1)
	}
	fmt.Println("# validation: OK")
}
