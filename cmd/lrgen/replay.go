package main

import (
	"fmt"
	"net"
	"os"

	"datacell/internal/stream"
)

// replayTrace paces a recorded trace into a TCP receptor (or stdout when
// no target is given), using the Linear Road benchmark-time column.
func replayTrace(path, target string, speedup float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var dst = os.Stdout
	var conn net.Conn
	if target != "" {
		conn, err = net.Dial("tcp", target)
		if err != nil {
			return err
		}
		defer conn.Close()
	}
	rp := stream.NewReplayer(1, speedup) // field 1 is the LR time column
	if conn != nil {
		err = rp.Replay(f, conn)
	} else {
		err = rp.Replay(f, dst)
	}
	fmt.Fprintf(os.Stderr, "lrgen: replayed %d tuples (paused %v)\n", rp.Lines, rp.Paused)
	return err
}
