package main

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"datacell/internal/ingest"
	"datacell/internal/stream"
	"datacell/internal/vector"
)

// lrTimeCol is the Linear Road benchmark-time column (field 1).
const lrTimeCol = 1

// lrTypes is the wire schema of a Linear Road trace tuple: eleven
// integer fields (typ, time, vid, spd, xway, lane, dir, seg, pos, qid,
// day).
var lrTypes = []vector.Type{
	vector.Int, vector.Int, vector.Int, vector.Int, vector.Int, vector.Int,
	vector.Int, vector.Int, vector.Int, vector.Int, vector.Int,
}

var lrNames = []string{"typ", "time", "vid", "spd", "xway", "lane", "dir", "seg", "pos", "qid", "day"}

// replayTrace paces a recorded trace into TCP receptors (or stdout when
// no target is given) through stream.Replayer, using the Linear Road
// benchmark-time column. With -shards, the tuples fan out round-robin
// over that many parallel connections; with -binary, each connection
// ships columnar batch frames of -batch tuples instead of text lines —
// the sensor side of the engine's sharded ingest periphery.
//
// TCP connections go through stream.ReconnWriter: dials and mid-stream
// write failures retry with capped exponential backoff and jitter, and
// each record (a frame or a line) is resent whole on the fresh
// connection, so a restarting kernel costs redelivery, not the replay.
// Record alignment is why no bufio sits between the encoders and the
// connection — every Write the reconnecting writer sees must be one
// complete wire record.
func replayTrace(path, target string, speedup float64, binary bool, shards, batch int) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	if shards < 1 {
		shards = 1
	}
	if target == "" {
		shards = 1 // stdout is one channel
	}
	writers := make([]io.Writer, shards)
	var stdout *bufio.Writer
	reconns := make([]*stream.ReconnWriter, 0, shards)
	for i := range writers {
		if target == "" {
			stdout = bufio.NewWriterSize(os.Stdout, 64*1024)
			writers[i] = stdout
			continue
		}
		w, err := stream.NewReconnWriter(&stream.Dialer{Addr: target})
		if err != nil {
			return 0, err
		}
		defer w.Close()
		reconns = append(reconns, w)
		writers[i] = w
	}
	var encoders []*ingest.BatchWriter
	if binary {
		encoders = make([]*ingest.BatchWriter, shards)
		for i := range encoders {
			encoders[i] = ingest.NewBatchWriter(writers[i], lrNames, lrTypes, batch)
		}
	}

	rp := stream.NewReplayer(lrTimeCol, speedup)
	next := 0
	var lineBuf []byte
	emit := func(line string) error {
		k := next % shards
		next++
		if binary {
			vals, err := stream.DecodeRow(line, lrTypes)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lrgen: skipping malformed tuple %q: %v\n", line, err)
				return nil
			}
			return encoders[k].WriteRow(vals...)
		}
		lineBuf = append(append(lineBuf[:0], line...), '\n')
		_, err := writers[k].Write(lineBuf)
		return err
	}
	flush := func() error {
		for i := range writers {
			if binary {
				if err := encoders[i].Flush(); err != nil {
					return err
				}
			}
		}
		if stdout != nil {
			return stdout.Flush()
		}
		return nil
	}
	err = rp.ReplayFunc(f, emit, flush)
	redials := 0
	for _, w := range reconns {
		redials += w.Reconnects
	}
	fmt.Fprintf(os.Stderr, "lrgen: replayed %d tuples over %d connection(s) (paused %v, %d reconnect(s))\n",
		rp.Lines, shards, rp.Paused, redials)
	return rp.Lines, err
}
