package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"

	"datacell/internal/ingest"
	"datacell/internal/stream"
	"datacell/internal/vector"
)

// lrTimeCol is the Linear Road benchmark-time column (field 1).
const lrTimeCol = 1

// lrTypes is the wire schema of a Linear Road trace tuple: eleven
// integer fields (typ, time, vid, spd, xway, lane, dir, seg, pos, qid,
// day).
var lrTypes = []vector.Type{
	vector.Int, vector.Int, vector.Int, vector.Int, vector.Int, vector.Int,
	vector.Int, vector.Int, vector.Int, vector.Int, vector.Int,
}

var lrNames = []string{"typ", "time", "vid", "spd", "xway", "lane", "dir", "seg", "pos", "qid", "day"}

// replayTrace paces a recorded trace into TCP receptors (or stdout when
// no target is given) through stream.Replayer, using the Linear Road
// benchmark-time column. With -shards, the tuples fan out round-robin
// over that many parallel connections; with -binary, each connection
// ships columnar batch frames of -batch tuples instead of text lines —
// the sensor side of the engine's sharded ingest periphery.
func replayTrace(path, target string, speedup float64, binary bool, shards, batch int) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	if shards < 1 {
		shards = 1
	}
	if target == "" {
		shards = 1 // stdout is one channel
	}
	writers := make([]*bufio.Writer, shards)
	for i := range writers {
		var w io.Writer = os.Stdout
		if target != "" {
			conn, err := net.Dial("tcp", target)
			if err != nil {
				return 0, err
			}
			defer conn.Close()
			w = conn
		}
		writers[i] = bufio.NewWriterSize(w, 64*1024)
	}
	var encoders []*ingest.BatchWriter
	if binary {
		encoders = make([]*ingest.BatchWriter, shards)
		for i := range encoders {
			encoders[i] = ingest.NewBatchWriter(writers[i], lrNames, lrTypes, batch)
		}
	}

	rp := stream.NewReplayer(lrTimeCol, speedup)
	next := 0
	emit := func(line string) error {
		k := next % shards
		next++
		if binary {
			vals, err := stream.DecodeRow(line, lrTypes)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lrgen: skipping malformed tuple %q: %v\n", line, err)
				return nil
			}
			return encoders[k].WriteRow(vals...)
		}
		if _, err := writers[k].WriteString(line); err != nil {
			return err
		}
		return writers[k].WriteByte('\n')
	}
	flush := func() error {
		for i := range writers {
			if binary {
				if err := encoders[i].Flush(); err != nil {
					return err
				}
			}
			if err := writers[i].Flush(); err != nil {
				return err
			}
		}
		return nil
	}
	err = rp.ReplayFunc(f, emit, flush)
	fmt.Fprintf(os.Stderr, "lrgen: replayed %d tuples over %d connection(s) (paused %v)\n",
		rp.Lines, shards, rp.Paused)
	return rp.Lines, err
}
