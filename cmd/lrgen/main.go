// Command lrgen generates a Linear Road input trace in the DataCell's
// textual tuple format (pipe-separated, one tuple per line), suitable for
// replay through a TCP receptor:
//
//	lrgen -sf 0.5 -duration 600 > trace.txt
//	datacell -script lr.sql -listen input=:9999 &
//	lrgen -replay trace.txt -target localhost:9999 -speedup 60
//	lrgen -replay trace.txt -target localhost:9999 -binary -shards 4
//
// In replay mode, tuples are paced by their benchmark-time column (field
// 2) divided by the speedup factor — a sensor tool for live experiments.
// With -binary the replay ships columnar batch frames over the engine's
// binary wire protocol instead of text lines, and -shards fans the trace
// out round-robin over several parallel connections, exercising the
// sharded ingest periphery end to end.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"datacell/internal/lroad"
)

func main() {
	sf := flag.Float64("sf", 0.5, "scale factor")
	duration := flag.Int64("duration", 600, "benchmark seconds")
	seed := flag.Int64("seed", 1, "generator seed")
	replay := flag.String("replay", "", "replay a recorded trace file instead of generating")
	target := flag.String("target", "", "TCP address to replay into (with -replay)")
	speedup := flag.Float64("speedup", 1, "replay speedup factor")
	binary := flag.Bool("binary", false, "replay over the binary batch wire protocol instead of text lines")
	shards := flag.Int("shards", 1, "parallel replay connections (round-robin fan-out)")
	batch := flag.Int("batch", 256, "tuples per binary frame (with -binary)")
	flag.Parse()

	if *replay != "" {
		if _, err := replayTrace(*replay, *target, *speedup, *binary, *shards, *batch); err != nil {
			fmt.Fprintf(os.Stderr, "lrgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := lroad.DefaultConfig(*sf)
	cfg.Duration = *duration
	cfg.Seed = *seed
	g := lroad.NewGenerator(cfg)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for !g.Done() {
		for _, t := range g.Tick() {
			fmt.Fprintf(w, "%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d\n",
				t.Typ, t.Time, t.VID, t.Spd, t.XWay, t.Lane, t.Dir, t.Seg, t.Pos, t.QID, t.Day)
		}
	}
	fmt.Fprintf(os.Stderr, "lrgen: %d tuples (%d position, %d balance, %d daily), %d scheduled accidents\n",
		g.TotalTuples, g.TotalPos, g.TotalBalQ, g.TotalDayQ, len(g.Accidents()))
}
