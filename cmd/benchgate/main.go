// Command benchgate is the CI benchmark-regression gate. It compares the
// allocation profile of the current build against the committed baseline
// in BENCH_kernel.json and exits non-zero when the hot path regressed.
//
// Allocation counts are the gated metric because they are stable on
// shared CI runners; ns/op and events/s are reported by the same files
// but vary with the machine, so they are mostly not gated here (the
// committed trajectory in BENCH_kernel.json is measured on a fixed box).
// The one throughput gate is the ingest figure: with -ingest-baseline,
// every (protocol, shards, batch) row of the regenerated
// BENCH_ingest.json must reach at least committed/1.5 events/s — a
// floor generous enough for runner variance but tight enough to catch
// an accidentally serialized decode path or a backpressure stall storm.
//
// Usage, as wired in .github/workflows/ci.yml:
//
//	cp BENCH_kernel.json /tmp/BENCH_kernel.committed.json
//	go test -run xxx -bench '…' -benchmem -benchtime 100x . | tee bench-smoke.txt
//	go run ./cmd/microbench -fig kernel -json          # rewrites the this_pr row
//	go run ./cmd/benchgate -baseline /tmp/BENCH_kernel.committed.json \
//	    -current BENCH_kernel.json -bench bench-smoke.txt
//
// A measurement fails the gate when it exceeds committed*(1+slack)+abs;
// the slack absorbs run-to-run jitter (sync.Pool refills after a GC),
// the absolute headroom keeps tiny baselines from gating on ±1 alloc.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"datacell/internal/provenance"
)

// warnProvenance compares a baseline file's capture environment against
// this host and prints a non-fatal warning when they differ: throughput
// floors and latency SLOs measured on another box are advisory at best.
// Missing or unstamped files warn too — the gate still runs either way.
func warnProvenance(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return // the loader will report this fatally
	}
	var doc struct {
		Provenance provenance.Info `json:"provenance"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return
	}
	if diffs := provenance.Diff(doc.Provenance, provenance.Capture()); len(diffs) > 0 {
		fmt.Printf("benchgate: WARNING: baseline %s was captured in a different environment (%s); throughput/latency comparisons are advisory\n",
			path, strings.Join(diffs, ", "))
	}
}

// kernelDoc mirrors the BENCH_kernel.json layout.
type kernelDoc struct {
	Rows []kernelRow `json:"rows"`
}

// kernelRow is one trajectory entry: either the microbench kernel figure
// (no Benchmark field) or a go-test benchmark row.
type kernelRow struct {
	Phase           string   `json:"phase"`
	Benchmark       string   `json:"benchmark"`
	AllocsPerFiring *float64 `json:"allocs_per_firing"`
	AllocsPerOp     *float64 `json:"allocs_per_op"`
}

// measurement is one gated metric: a name, the committed budget and the
// current value.
type measurement struct {
	name      string
	committed float64
	current   float64
}

// regressed reports whether the measurement exceeds its budget under the
// gate's slack policy.
func (m measurement) regressed(slack, abs float64) bool {
	return m.current > m.committed*(1+slack)+abs
}

// belowFloor reports whether the measurement fell under its committed
// throughput floor (committed/div) — the ingest events/s policy.
func (m measurement) belowFloor(div float64) bool {
	return m.current < m.committed/div
}

func loadKernel(path string) (kernelDoc, error) {
	var doc kernelDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// latestAllocs extracts the trajectory's current-build alloc metrics from
// one file: the kernel figure's allocs/firing and each benchmark row's
// allocs/op, keyed by metric name. Only "this_pr" rows qualify — baseline
// rows record history, not the build under test.
func latestAllocs(doc kernelDoc) map[string]float64 {
	out := map[string]float64{}
	for _, r := range doc.Rows {
		if r.Phase != "this_pr" {
			continue
		}
		switch {
		case r.Benchmark == "" && r.AllocsPerFiring != nil:
			out["kernel allocs/firing"] = *r.AllocsPerFiring
		case r.Benchmark != "" && r.AllocsPerOp != nil:
			out[r.Benchmark+" allocs/op"] = *r.AllocsPerOp
		}
	}
	return out
}

// ingestDoc mirrors the BENCH_ingest.json layout.
type ingestDoc struct {
	Rows []ingestRow `json:"rows"`
}

// ingestRow is one ingest sweep point, keyed by (protocol, shards,
// batch).
type ingestRow struct {
	Protocol     string  `json:"protocol"`
	Shards       int     `json:"shards"`
	Batch        int     `json:"batch"`
	EventsPerSec float64 `json:"events_per_second"`
}

func (r ingestRow) key() string {
	return fmt.Sprintf("ingest %s shards=%d batch=%d events/s", r.Protocol, r.Shards, r.Batch)
}

func loadIngest(path string) (map[string]float64, error) {
	var doc ingestDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for _, r := range doc.Rows {
		out[r.key()] = r.EventsPerSec
	}
	return out, nil
}

// gateIngest compares current ingest throughput against committed
// floors: a row regresses when it falls below committed/div. Rows
// missing on either side are skipped.
func gateIngest(committed, current map[string]float64, div float64) (checked, bad []measurement) {
	for name, base := range committed {
		cur, ok := current[name]
		if !ok {
			continue
		}
		m := measurement{name: name, committed: base, current: cur}
		checked = append(checked, m)
		if m.belowFloor(div) {
			bad = append(bad, m)
		}
	}
	return checked, bad
}

// aggDoc mirrors the BENCH_agg.json layout.
type aggDoc struct {
	Rows []aggRow `json:"rows"`
}

// aggRow is one two-phase aggregation sweep point, keyed by (strategy,
// parallelism).
type aggRow struct {
	Strategy     string  `json:"strategy"`
	Parallelism  int     `json:"parallelism"`
	EventsPerSec float64 `json:"events_per_second"`
}

func (r aggRow) key() string {
	return fmt.Sprintf("agg %s P=%d events/s", r.Strategy, r.Parallelism)
}

func loadAgg(path string) (map[string]float64, error) {
	var doc aggDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for _, r := range doc.Rows {
		out[r.key()] = r.EventsPerSec
	}
	return out, nil
}

// adaptDoc mirrors the BENCH_adapt.json layout.
type adaptDoc struct {
	Rows []adaptRow `json:"rows"`
}

// adaptRow is one parallelism-policy run of the ramp workload, keyed by
// mode ("static-1", "static-4", "auto").
type adaptRow struct {
	Mode         string  `json:"mode"`
	EventsPerSec float64 `json:"events_per_second"`
}

func (r adaptRow) key() string {
	return fmt.Sprintf("adapt %s events/s", r.Mode)
}

func loadAdapt(path string) ([]adaptRow, map[string]float64, error) {
	var doc adaptDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for _, r := range doc.Rows {
		out[r.key()] = r.EventsPerSec
	}
	return doc.Rows, out, nil
}

// gateAdaptAuto enforces the adaptive floor on the current run itself:
// the auto policy must reach at least bestStatic/div, so a controller
// that dithers, thrashes or parks at a losing P cannot hide behind a
// slow runner — the statics ran on the same box in the same job.
func gateAdaptAuto(rows []adaptRow, div float64) (measurement, bool, bool) {
	auto, bestStatic := 0.0, 0.0
	haveAuto := false
	for _, r := range rows {
		if r.Mode == "auto" {
			auto = r.EventsPerSec
			haveAuto = true
		} else if r.EventsPerSec > bestStatic {
			bestStatic = r.EventsPerSec
		}
	}
	if !haveAuto || bestStatic == 0 {
		return measurement{}, false, false
	}
	m := measurement{name: "adapt auto vs best static events/s", committed: bestStatic, current: auto}
	return m, true, m.belowFloor(div)
}

// walDoc mirrors the BENCH_wal.json layout.
type walDoc struct {
	Rows []walRow `json:"rows"`
}

// walRow is one durability sweep point, keyed by (wal, sync interval,
// shards, batch); protocol is always binary.
type walRow struct {
	WAL            string  `json:"wal"`
	SyncIntervalMS float64 `json:"sync_interval_ms"`
	Protocol       string  `json:"protocol"`
	Shards         int     `json:"shards"`
	Batch          int     `json:"batch"`
	EventsPerSec   float64 `json:"events_per_second"`
}

func (r walRow) key() string {
	return fmt.Sprintf("wal %s sync=%gms shards=%d batch=%d events/s",
		r.WAL, r.SyncIntervalMS, r.Shards, r.Batch)
}

func loadWAL(path string) ([]walRow, map[string]float64, error) {
	var doc walDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for _, r := range doc.Rows {
		out[r.key()] = r.EventsPerSec
	}
	return doc.Rows, out, nil
}

// walOverhead is the fraction of undurable throughput a WAL-on run must
// keep: the tee, CRC and group commit may not cost more than 30% before
// the gate's divisor slack even starts to apply.
const walOverhead = 0.7

// gateWALOverhead enforces the durability tax within the current run:
// every WAL-on row must reach at least walOverhead× the WAL-off row of
// the same (shards, batch), measured on the same box in the same job —
// a regression in the tee or the group-commit path cannot hide behind a
// slow runner.
func gateWALOverhead(rows []walRow, div float64) (checked, bad []measurement) {
	off := map[string]float64{}
	for _, r := range rows {
		if r.WAL == "off" {
			off[fmt.Sprintf("shards=%d batch=%d", r.Shards, r.Batch)] = r.EventsPerSec
		}
	}
	for _, r := range rows {
		if r.WAL != "on" {
			continue
		}
		base, ok := off[fmt.Sprintf("shards=%d batch=%d", r.Shards, r.Batch)]
		if !ok || base == 0 {
			continue
		}
		m := measurement{
			name:      fmt.Sprintf("wal on sync=%gms vs off shards=%d batch=%d", r.SyncIntervalMS, r.Shards, r.Batch),
			committed: walOverhead * base,
			current:   r.EventsPerSec,
		}
		checked = append(checked, m)
		if m.belowFloor(div) {
			bad = append(bad, m)
		}
	}
	return checked, bad
}

// gateWALVsIngest is the cross-file durability floor the issue pins:
// every current WAL-on row must reach walOverhead× the committed
// BENCH_ingest.json binary row of the same (shards, batch), divided by
// the gate's slack — the WAL may not cost the repo its committed ingest
// trajectory.
func gateWALVsIngest(rows []walRow, ingest map[string]float64, div float64) (checked, bad []measurement) {
	for _, r := range rows {
		if r.WAL != "on" {
			continue
		}
		base, ok := ingest[fmt.Sprintf("ingest binary shards=%d batch=%d events/s", r.Shards, r.Batch)]
		if !ok || base == 0 {
			continue
		}
		m := measurement{
			name:      fmt.Sprintf("wal on sync=%gms vs committed ingest shards=%d batch=%d", r.SyncIntervalMS, r.Shards, r.Batch),
			committed: walOverhead * base,
			current:   r.EventsPerSec,
		}
		checked = append(checked, m)
		if m.belowFloor(div) {
			bad = append(bad, m)
		}
	}
	return checked, bad
}

// latencyDoc mirrors the BENCH_latency.json layout datacellbench writes.
type latencyDoc struct {
	Rows []latencyRow `json:"rows"`
}

// latencyRow is one scenario phase of the open-loop latency harness,
// keyed by phase name.
type latencyRow struct {
	Phase       string  `json:"phase"`
	AchievedEPS float64 `json:"achieved_eps"`
	P99us       float64 `json:"p99_us"`
}

func loadLatency(path string) ([]latencyRow, error) {
	var doc latencyDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc.Rows, nil
}

// gateLatency enforces the latency SLO trajectory: per phase, the current
// p99 ingest-to-emit latency must stay within committed×mult plus an
// absolute headroom (microseconds — sub-millisecond baselines would
// otherwise gate on scheduler noise), and the achieved events/s must hold
// the committed/div floor so a run cannot pass by shedding its offered
// load. Phases missing on either side are skipped.
func gateLatency(committed, current []latencyRow, mult, absUs, div float64) (checked, bad []measurement) {
	cur := map[string]latencyRow{}
	for _, r := range current {
		cur[r.Phase] = r
	}
	for _, c := range committed {
		r, ok := cur[c.Phase]
		if !ok {
			continue
		}
		p99 := measurement{
			name:      fmt.Sprintf("latency %s p99 µs", c.Phase),
			committed: c.P99us,
			current:   r.P99us,
		}
		checked = append(checked, p99)
		if p99.regressed(mult-1, absUs) {
			bad = append(bad, p99)
		}
		if c.AchievedEPS > 0 {
			eps := measurement{
				name:      fmt.Sprintf("latency %s achieved events/s", c.Phase),
				committed: c.AchievedEPS,
				current:   r.AchievedEPS,
			}
			checked = append(checked, eps)
			if eps.belowFloor(div) {
				bad = append(bad, eps)
			}
		}
	}
	return checked, bad
}

// benchLine matches `go test -bench -benchmem` output rows, e.g.
// "BenchmarkSQLQueryFiring-8  100  723510 ns/op  18720 B/op  45 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+[\d.]+ ns/op(?:\s+[\d.]+ [A-Za-z]+/s)?\s+[\d.]+ B/op\s+([\d.]+) allocs/op`)

// parseBenchAllocs extracts allocs/op per benchmark from go-test bench
// output. Sub-benchmarks keep their full slash name.
func parseBenchAllocs(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]+" allocs/op"] = v
	}
	return out, sc.Err()
}

// gate compares current metrics against committed budgets, returning the
// comparisons made and the subset that regressed. Metrics missing on
// either side are skipped: the gate guards committed budgets, it does not
// demand new ones.
func gate(committed, current map[string]float64, slack, abs float64) (checked, bad []measurement) {
	for name, base := range committed {
		cur, ok := current[name]
		if !ok {
			continue
		}
		m := measurement{name: name, committed: base, current: cur}
		checked = append(checked, m)
		if m.regressed(slack, abs) {
			bad = append(bad, m)
		}
	}
	return checked, bad
}

func main() {
	baseline := flag.String("baseline", "", "committed BENCH_kernel.json (the budget)")
	current := flag.String("current", "BENCH_kernel.json", "regenerated BENCH_kernel.json (the build under test)")
	bench := flag.String("bench", "", "go test -bench -benchmem output to gate as well (optional)")
	slack := flag.Float64("slack", 0.5, "relative headroom before a regression trips")
	abs := flag.Float64("abs", 8, "absolute alloc headroom on top of the slack")
	ingestBase := flag.String("ingest-baseline", "", "committed BENCH_ingest.json (events/s floors; optional)")
	ingestCur := flag.String("ingest-current", "BENCH_ingest.json", "regenerated BENCH_ingest.json")
	ingestDiv := flag.Float64("ingest-div", 1.5, "ingest floor divisor: current must reach committed/div")
	aggBase := flag.String("agg-baseline", "", "committed BENCH_agg.json (events/s floors; optional)")
	aggCur := flag.String("agg-current", "BENCH_agg.json", "regenerated BENCH_agg.json")
	aggDiv := flag.Float64("agg-div", 1.5, "agg floor divisor: current must reach committed/div")
	adaptBase := flag.String("adapt-baseline", "", "committed BENCH_adapt.json (events/s floors; optional)")
	adaptCur := flag.String("adapt-current", "BENCH_adapt.json", "regenerated BENCH_adapt.json")
	adaptDiv := flag.Float64("adapt-div", 1.5, "adapt floor divisor: per-mode floors and the auto ≥ best-static/div consistency gate")
	walBase := flag.String("wal-baseline", "", "committed BENCH_wal.json (events/s floors; optional)")
	walCur := flag.String("wal-current", "BENCH_wal.json", "regenerated BENCH_wal.json")
	walDiv := flag.Float64("wal-div", 2.0, "wal floor divisor: per-row floors plus the WAL-on ≥ 0.7×WAL-off and 0.7×committed-ingest gates (fsync-bound runs jitter more than plain ingest)")
	latBase := flag.String("latency-baseline", "", "committed BENCH_latency.json (p99 SLOs per phase; optional)")
	latCur := flag.String("latency-current", "BENCH_latency.json", "regenerated BENCH_latency.json")
	latMult := flag.Float64("latency-mult", 1.5, "latency ceiling multiplier: per-phase p99 must stay under committed*mult (+abs headroom)")
	latAbsUs := flag.Float64("latency-abs-us", 2000, "absolute p99 headroom in µs on top of the multiplier (sub-ms baselines jitter by a scheduler hiccup per run; regressions of interest are tens of ms)")
	latDiv := flag.Float64("latency-div", 2.0, "achieved-rate floor divisor for latency phases: a run cannot pass its SLO by shedding offered load")
	flag.Parse()
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}
	for _, p := range []string{*baseline, *ingestBase, *aggBase, *adaptBase, *walBase, *latBase} {
		if p != "" {
			warnProvenance(p)
		}
	}
	base, err := loadKernel(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	committed := latestAllocs(base)
	if len(committed) == 0 {
		fmt.Println("benchgate: baseline carries no alloc budgets; nothing to gate")
		return
	}
	cur, err := loadKernel(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	measured := latestAllocs(cur)
	if *bench != "" {
		fromBench, err := parseBenchAllocs(*bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		// Fresh go-test numbers win over whatever the JSON carries.
		for k, v := range fromBench {
			measured[k] = v
		}
	}
	checked, bad := gate(committed, measured, *slack, *abs)
	for _, m := range checked {
		status := "ok"
		if m.regressed(*slack, *abs) {
			status = "REGRESSED"
		}
		fmt.Printf("benchgate: %-40s committed %.1f, current %.1f  [%s]\n", m.name, m.committed, m.current, status)
	}
	if len(checked) == 0 {
		fmt.Println("benchgate: no committed alloc metric was measured; nothing gated")
	} else {
		fmt.Printf("benchgate: %d allocation budget(s) checked\n", len(checked))
	}

	var ingestBad []measurement
	if *ingestBase != "" {
		base, err := loadIngest(*ingestBase)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		cur, err := loadIngest(*ingestCur)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		var ingestChecked []measurement
		ingestChecked, ingestBad = gateIngest(base, cur, *ingestDiv)
		for _, m := range ingestChecked {
			status := "ok"
			if m.belowFloor(*ingestDiv) {
				status = "REGRESSED"
			}
			fmt.Printf("benchgate: %-40s committed %.0f, current %.0f, floor %.0f  [%s]\n",
				m.name, m.committed, m.current, m.committed / *ingestDiv, status)
		}
		if len(ingestChecked) == 0 {
			fmt.Println("benchgate: no committed ingest row was measured; ingest not gated")
		} else {
			fmt.Printf("benchgate: %d ingest floor(s) checked\n", len(ingestChecked))
		}
	}

	var aggBad []measurement
	if *aggBase != "" {
		base, err := loadAgg(*aggBase)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		cur, err := loadAgg(*aggCur)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		var aggChecked []measurement
		aggChecked, aggBad = gateIngest(base, cur, *aggDiv)
		for _, m := range aggChecked {
			status := "ok"
			if m.belowFloor(*aggDiv) {
				status = "REGRESSED"
			}
			fmt.Printf("benchgate: %-40s committed %.0f, current %.0f, floor %.0f  [%s]\n",
				m.name, m.committed, m.current, m.committed / *aggDiv, status)
		}
		if len(aggChecked) == 0 {
			fmt.Println("benchgate: no committed agg row was measured; agg not gated")
		} else {
			fmt.Printf("benchgate: %d agg floor(s) checked\n", len(aggChecked))
		}
	}

	var adaptBad []measurement
	if *adaptBase != "" {
		_, base, err := loadAdapt(*adaptBase)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		curRows, cur, err := loadAdapt(*adaptCur)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		var adaptChecked []measurement
		adaptChecked, adaptBad = gateIngest(base, cur, *adaptDiv)
		// The cross-mode consistency gate runs within the current file:
		// auto must keep up with the best static policy measured on the
		// same box in the same job.
		if m, ok, below := gateAdaptAuto(curRows, *adaptDiv); ok {
			adaptChecked = append(adaptChecked, m)
			if below {
				adaptBad = append(adaptBad, m)
			}
		}
		for _, m := range adaptChecked {
			status := "ok"
			if m.belowFloor(*adaptDiv) {
				status = "REGRESSED"
			}
			fmt.Printf("benchgate: %-40s committed %.0f, current %.0f, floor %.0f  [%s]\n",
				m.name, m.committed, m.current, m.committed / *adaptDiv, status)
		}
		if len(adaptChecked) == 0 {
			fmt.Println("benchgate: no committed adapt row was measured; adapt not gated")
		} else {
			fmt.Printf("benchgate: %d adapt floor(s) checked\n", len(adaptChecked))
		}
	}

	var walBad []measurement
	if *walBase != "" {
		_, base, err := loadWAL(*walBase)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		curRows, cur, err := loadWAL(*walCur)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		walChecked, walRowBad := gateIngest(base, cur, *walDiv)
		walBad = walRowBad
		// Same-file consistency: the durability tax measured against the
		// WAL-off rows from the same job.
		ovChecked, ovBad := gateWALOverhead(curRows, *walDiv)
		walChecked = append(walChecked, ovChecked...)
		walBad = append(walBad, ovBad...)
		// Cross-file: WAL-on throughput against the committed ingest binary
		// trajectory, when the committed ingest baseline is at hand.
		if *ingestBase != "" {
			ingestCommitted, err := loadIngest(*ingestBase)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
				os.Exit(2)
			}
			xChecked, xBad := gateWALVsIngest(curRows, ingestCommitted, *walDiv)
			walChecked = append(walChecked, xChecked...)
			walBad = append(walBad, xBad...)
		}
		for _, m := range walChecked {
			status := "ok"
			if m.belowFloor(*walDiv) {
				status = "REGRESSED"
			}
			fmt.Printf("benchgate: %-56s committed %.0f, current %.0f, floor %.0f  [%s]\n",
				m.name, m.committed, m.current, m.committed / *walDiv, status)
		}
		if len(walChecked) == 0 {
			fmt.Println("benchgate: no committed wal row was measured; wal not gated")
		} else {
			fmt.Printf("benchgate: %d wal floor(s) checked\n", len(walChecked))
		}
	}

	var latBad []measurement
	if *latBase != "" {
		base, err := loadLatency(*latBase)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		cur, err := loadLatency(*latCur)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		latChecked, latAllBad := gateLatency(base, cur, *latMult, *latAbsUs, *latDiv)
		latBad = latAllBad
		isBad := map[string]bool{}
		for _, m := range latBad {
			isBad[m.name] = true
		}
		for _, m := range latChecked {
			status := "ok"
			if isBad[m.name] {
				status = "REGRESSED"
			}
			if strings.Contains(m.name, "p99") {
				fmt.Printf("benchgate: %-40s committed %.0f, current %.0f, ceiling %.0f  [%s]\n",
					m.name, m.committed, m.current, m.committed**latMult+*latAbsUs, status)
			} else {
				fmt.Printf("benchgate: %-40s committed %.0f, current %.0f, floor %.0f  [%s]\n",
					m.name, m.committed, m.current, m.committed / *latDiv, status)
			}
		}
		if len(latChecked) == 0 {
			fmt.Println("benchgate: no committed latency phase was measured; latency not gated")
		} else {
			fmt.Printf("benchgate: %d latency SLO(s) checked\n", len(latChecked))
		}
	}

	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d allocation budget(s) regressed past committed*(1+%.2f)+%.0f\n",
			len(bad), *slack, *abs)
	}
	if len(ingestBad) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d ingest floor(s) fell below committed/%.2f\n",
			len(ingestBad), *ingestDiv)
	}
	if len(aggBad) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d agg floor(s) fell below committed/%.2f\n",
			len(aggBad), *aggDiv)
	}
	if len(adaptBad) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d adapt floor(s) fell below committed/%.2f\n",
			len(adaptBad), *adaptDiv)
	}
	if len(walBad) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d wal floor(s) fell below committed/%.2f\n",
			len(walBad), *walDiv)
	}
	if len(latBad) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d latency SLO(s) broken (p99 past committed*%.2f+%.0fµs, or achieved rate below committed/%.2f)\n",
			len(latBad), *latMult, *latAbsUs, *latDiv)
	}
	if len(bad) > 0 || len(ingestBad) > 0 || len(aggBad) > 0 || len(adaptBad) > 0 || len(walBad) > 0 || len(latBad) > 0 {
		os.Exit(1)
	}
}
