package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLatestAllocsSelectsThisPRRows(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kernel.json")
	doc := `{
	  "fig": "kernel",
	  "rows": [
	    {"phase": "pre_pr_baseline", "allocs_per_firing": 51.3},
	    {"phase": "this_pr", "allocs_per_firing": 7.5},
	    {"phase": "pre_pr_baseline", "benchmark": "BenchmarkSQLQueryFiring", "allocs_per_op": 10246},
	    {"phase": "this_pr", "benchmark": "BenchmarkSQLQueryFiring", "allocs_per_op": 45},
	    {"phase": "this_pr", "benchmark": "BenchmarkSingleQueryFiring", "allocs_per_op": 34}
	  ]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadKernel(path)
	if err != nil {
		t.Fatal(err)
	}
	got := latestAllocs(loaded)
	want := map[string]float64{
		"kernel allocs/firing":                 7.5,
		"BenchmarkSQLQueryFiring allocs/op":    45,
		"BenchmarkSingleQueryFiring allocs/op": 34,
	}
	if len(got) != len(want) {
		t.Fatalf("latestAllocs = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("latestAllocs[%q] = %g, want %g", k, got[k], v)
		}
	}
}

func TestParseBenchAllocs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	out := `goos: linux
goarch: amd64
pkg: datacell
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkSingleQueryFiring-8   	     100	     57329 ns/op	     776 B/op	      34 allocs/op
BenchmarkSQLQueryFiring-8      	     100	    723510 ns/op	   18720 B/op	      45 allocs/op
BenchmarkKernelThroughput/q=1-8	     100	    1200.5 ns/op	 345.67 MB/s	     128 B/op	       2 allocs/op
PASS
ok  	datacell	2.153s
`
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBenchAllocs(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkSingleQueryFiring allocs/op":    34,
		"BenchmarkSQLQueryFiring allocs/op":       45,
		"BenchmarkKernelThroughput/q=1 allocs/op": 2,
	}
	if len(got) != len(want) {
		t.Fatalf("parseBenchAllocs = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("parseBenchAllocs[%q] = %g, want %g", k, got[k], v)
		}
	}
}

func TestGatePolicy(t *testing.T) {
	committed := map[string]float64{
		"kernel allocs/firing":              7.5,
		"BenchmarkSQLQueryFiring allocs/op": 45,
		"only-in-baseline allocs/op":        10,
	}
	current := map[string]float64{
		"kernel allocs/firing":              18,  // 7.5*1.5+8 = 19.25: inside
		"BenchmarkSQLQueryFiring allocs/op": 90,  // 45*1.5+8 = 75.5: regressed
		"only-in-current allocs/op":         999, // unbudgeted: ignored
	}
	checked, bad := gate(committed, current, 0.5, 8)
	if len(checked) != 2 {
		t.Fatalf("checked %d metrics, want 2: %v", len(checked), checked)
	}
	if len(bad) != 1 || bad[0].name != "BenchmarkSQLQueryFiring allocs/op" {
		t.Fatalf("regressions = %v, want exactly the SQL firing budget", bad)
	}
	// Dropping below budget is never a failure.
	if _, bad := gate(committed, map[string]float64{"kernel allocs/firing": 0}, 0.5, 8); len(bad) != 0 {
		t.Fatalf("improvement flagged as regression: %v", bad)
	}
}

func TestIngestFloorPolicy(t *testing.T) {
	dir := t.TempDir()
	write := func(name, doc string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath := write("base.json", `{
	  "fig": "ingest",
	  "rows": [
	    {"protocol": "binary", "shards": 4, "batch": 1024, "events_per_second": 6000000},
	    {"protocol": "text", "shards": 1, "batch": 1024, "events_per_second": 3000000},
	    {"protocol": "text", "shards": 4, "batch": 64, "events_per_second": 2500000}
	  ]
	}`)
	curPath := write("cur.json", `{
	  "fig": "ingest",
	  "rows": [
	    {"protocol": "binary", "shards": 4, "batch": 1024, "events_per_second": 4100000},
	    {"protocol": "text", "shards": 1, "batch": 1024, "events_per_second": 1900000}
	  ]
	}`)
	base, err := loadIngest(basePath)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := loadIngest(curPath)
	if err != nil {
		t.Fatal(err)
	}
	checked, bad := gateIngest(base, cur, 1.5)
	// The text shards=4 row is missing from current: skipped, not failed.
	if len(checked) != 2 {
		t.Fatalf("checked %d rows, want 2: %v", len(checked), checked)
	}
	// binary: 4.1M >= 6M/1.5 = 4M, ok. text: 1.9M < 3M/1.5 = 2M, regressed.
	if len(bad) != 1 || bad[0].name != "ingest text shards=1 batch=1024 events/s" {
		t.Fatalf("regressions = %v, want exactly the textual single-socket floor", bad)
	}
}

func TestAdaptAutoConsistencyGate(t *testing.T) {
	rows := []adaptRow{
		{Mode: "static-1", EventsPerSec: 1000},
		{Mode: "static-4", EventsPerSec: 1500},
		{Mode: "auto", EventsPerSec: 1100},
	}
	// auto 1100 >= best static 1500/1.5 = 1000: within the floor.
	if m, ok, below := gateAdaptAuto(rows, 1.5); !ok || below {
		t.Fatalf("auto within floor flagged: ok=%v below=%v m=%v", ok, below, m)
	}
	// A dithering controller at 900 < 1000 trips the gate.
	rows[2].EventsPerSec = 900
	if _, ok, below := gateAdaptAuto(rows, 1.5); !ok || !below {
		t.Fatal("auto below best-static/1.5 did not trip the consistency gate")
	}
	// No auto row: nothing to gate.
	if _, ok, _ := gateAdaptAuto(rows[:2], 1.5); ok {
		t.Fatal("gate claimed to check a file without an auto row")
	}
}

func TestWALOverheadGate(t *testing.T) {
	rows := []walRow{
		{WAL: "off", Shards: 1, Batch: 64, EventsPerSec: 5000000},
		{WAL: "off", Shards: 4, Batch: 1024, EventsPerSec: 6000000},
		{WAL: "on", SyncIntervalMS: 2, Shards: 1, Batch: 64, EventsPerSec: 4000000},
		{WAL: "on", SyncIntervalMS: 2, Shards: 4, Batch: 1024, EventsPerSec: 1500000},
		{WAL: "on", SyncIntervalMS: 10, Shards: 8, Batch: 64, EventsPerSec: 100}, // no off sibling: skipped
	}
	checked, bad := gateWALOverhead(rows, 2.0)
	if len(checked) != 2 {
		t.Fatalf("checked %d rows, want 2: %v", len(checked), checked)
	}
	// shards=1: 4M >= 0.7*5M/2 = 1.75M, ok. shards=4: 1.5M < 0.7*6M/2 = 2.1M, regressed.
	if len(bad) != 1 || bad[0].name != "wal on sync=2ms vs off shards=4 batch=1024" {
		t.Fatalf("regressions = %v, want exactly the shards=4 overhead floor", bad)
	}
}

func TestWALVsIngestGate(t *testing.T) {
	rows := []walRow{
		{WAL: "off", Shards: 1, Batch: 64, EventsPerSec: 5000000}, // off rows never gated here
		{WAL: "on", SyncIntervalMS: 2, Shards: 1, Batch: 64, EventsPerSec: 3000000},
		{WAL: "on", SyncIntervalMS: 2, Shards: 4, Batch: 1024, EventsPerSec: 2000000},
		{WAL: "on", SyncIntervalMS: 2, Shards: 8, Batch: 64, EventsPerSec: 100}, // no committed row: skipped
	}
	ingest := map[string]float64{
		"ingest binary shards=1 batch=64 events/s":   7000000,
		"ingest binary shards=4 batch=1024 events/s": 7000000,
	}
	checked, bad := gateWALVsIngest(rows, ingest, 2.0)
	if len(checked) != 2 {
		t.Fatalf("checked %d rows, want 2: %v", len(checked), checked)
	}
	// floor = 0.7*7M/2 = 2.45M: 3M ok, 2M regressed.
	if len(bad) != 1 || bad[0].name != "wal on sync=2ms vs committed ingest shards=4 batch=1024" {
		t.Fatalf("regressions = %v, want exactly the shards=4 cross-file floor", bad)
	}
}

func TestWALFloorLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.json")
	doc := `{
	  "fig": "wal",
	  "rows": [
	    {"wal": "off", "sync_interval_ms": 0, "protocol": "binary", "shards": 1, "batch": 64, "events_per_second": 5000000},
	    {"wal": "on", "sync_interval_ms": 2, "protocol": "binary", "shards": 1, "batch": 64, "events_per_second": 4000000}
	  ]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, keyed, err := loadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || keyed["wal on sync=2ms shards=1 batch=64 events/s"] != 4000000 {
		t.Fatalf("loadWAL parsed %v / %v", rows, keyed)
	}
}

func TestAdaptFloorLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "adapt.json")
	doc := `{
	  "fig": "adapt",
	  "rows": [
	    {"mode": "static-1", "events_per_second": 700000},
	    {"mode": "auto", "events_per_second": 800000}
	  ]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, keyed, err := loadAdapt(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || keyed["adapt auto events/s"] != 800000 {
		t.Fatalf("loadAdapt parsed %v / %v", rows, keyed)
	}
}

func TestLatencyGatePolicy(t *testing.T) {
	committed := []latencyRow{
		{Phase: "warm", AchievedEPS: 20000, P99us: 800},
		{Phase: "churn", AchievedEPS: 20000, P99us: 700},
		{Phase: "gone", AchievedEPS: 20000, P99us: 700}, // absent in current: skipped
	}
	current := []latencyRow{
		{Phase: "warm", AchievedEPS: 21000, P99us: 1600},  // ceiling 800*1.5+500=1700: ok
		{Phase: "churn", AchievedEPS: 8000, P99us: 1600},  // p99 past 1550; rate below 20000/2
		{Phase: "extra", AchievedEPS: 20000, P99us: 9000}, // no committed row: skipped
	}
	checked, bad := gateLatency(committed, current, 1.5, 500, 2.0)
	if len(checked) != 4 {
		t.Fatalf("checked %d measurements, want 4: %v", len(checked), checked)
	}
	if len(bad) != 2 {
		t.Fatalf("regressions = %v, want churn p99 and churn rate", bad)
	}
	for _, m := range bad {
		if m.name != "latency churn p99 µs" && m.name != "latency churn achieved events/s" {
			t.Errorf("unexpected regression %q", m.name)
		}
	}
}

func TestLatencyLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "latency.json")
	doc := `{
	  "fig": "latency",
	  "scenario": "smoke",
	  "rows": [
	    {"phase": "warm", "achieved_eps": 20211.4, "p50_us": 290.8, "p99_us": 811.0}
	  ]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err := loadLatency(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Phase != "warm" || rows[0].P99us != 811.0 || rows[0].AchievedEPS != 20211.4 {
		t.Fatalf("loadLatency parsed %+v", rows)
	}
}
