package main

import (
	"fmt"
	"os"
	"strings"

	"datacell"
)

// metaCommand handles backslash meta-commands interleaved with tuples on
// stdin in -feed mode (psql-style): `\stats` prints the live engine
// snapshot, `\events` the rewire/recovery trace. Returns false when the
// line is not a meta-command and should be fed as a tuple. Output goes to
// stderr so it never mixes into -print result rows on stdout.
func metaCommand(eng *datacell.Engine, line string) bool {
	if !strings.HasPrefix(line, `\`) {
		return false
	}
	switch strings.TrimSpace(line) {
	case `\stats`:
		printStats(eng)
	case `\events`:
		printEvents(eng)
	default:
		fmt.Fprintf(os.Stderr, "datacell: unknown meta-command %q (try \\stats or \\events)\n", line)
	}
	return true
}

// printStats renders one consistent Snapshot: engine state, per-query
// firing/latency stats, per-stream ingest and basket occupancy, and WAL
// activity — the CLI twin of the admin server's /snapshot.
func printStats(eng *datacell.Engine) {
	snap := eng.Snapshot()
	fmt.Fprintf(os.Stderr, "engine: strategy=%s parallelism=%d auto=%v queries=%d subscriptions=%d events=%d\n",
		snap.Strategy, snap.Parallelism, snap.AutoParallelism, len(snap.Queries), snap.Subscriptions, snap.EventsTotal)
	for _, q := range snap.Queries {
		fmt.Fprintf(os.Stderr, "query %s: fires=%d out=%d pending=%d errors=%d busy=%v\n",
			q.Name, q.Fires, q.OutRows, q.Pending, q.Errors, q.Busy)
		if q.LatCount > 0 {
			fmt.Fprintf(os.Stderr, "  latency: n=%d p50=%v p99=%v p99.9=%v max=%v\n",
				q.LatCount, q.LatP50, q.LatP99, q.LatP999, q.LatMax)
		}
	}
	for _, g := range snap.Groups {
		fmt.Fprintf(os.Stderr, "stream %s: strategy=%s partitions=%d ingested=%d stalls=%d rewires=%d\n",
			g.Stream, g.Strategy, g.Partitions, g.IngestTuples, g.IngestStalls, g.Rewires)
	}
	for _, b := range snap.Baskets {
		fmt.Fprintf(os.Stderr, "basket %s: resident=%d high_water=%d appended=%d consumed=%d dropped=%d\n",
			b.Stream, b.Resident, b.HighWater, b.Appended, b.Consumed, b.Dropped)
	}
	for _, w := range snap.WAL {
		fmt.Fprintf(os.Stderr, "wal %s: frames=%d bytes=%d syncs=%d rotations=%d batches=%d max_batch=%d\n",
			w.Stream, w.Frames, w.Bytes, w.Syncs, w.Rotations, w.Batches, w.MaxBatch)
	}
}

// printEvents dumps the retained event trace, oldest first.
func printEvents(eng *datacell.Engine) {
	events := eng.Events()
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "datacell: no events recorded yet")
		return
	}
	for _, ev := range events {
		line := fmt.Sprintf("#%d %s %s/%s", ev.Seq, ev.Time.Format("15:04:05.000"), ev.Subsystem, ev.Kind)
		if ev.Name != "" {
			line += " " + ev.Name
		}
		if ev.Reason != "" {
			line += " reason=" + ev.Reason
		}
		if ev.Duration > 0 {
			line += fmt.Sprintf(" took=%v", ev.Duration)
		}
		if ev.Fields != "" {
			line += " " + ev.Fields
		}
		fmt.Fprintln(os.Stderr, line)
	}
}
