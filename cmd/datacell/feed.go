package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"datacell"
	"datacell/internal/bat"
	"datacell/internal/ingest"
	"datacell/internal/stream"
)

const drainTimeout = 10 * time.Second

// feedStdin parses pipe-separated tuples from stdin into the named stream
// until EOF. Values are converted by the engine according to the stream's
// column types.
func feedStdin(eng *datacell.Engine, stream string) error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if metaCommand(eng, line) {
			continue
		}
		parts := strings.Split(line, "|")
		row := make(datacell.Row, len(parts))
		for i, p := range parts {
			row[i] = p // strings are parsed per column type by Append
		}
		if err := eng.Append(stream, row); err != nil {
			fmt.Fprintf(os.Stderr, "datacell: skipping tuple %q: %v\n", line, err)
			continue
		}
		n++
	}
	fmt.Fprintf(os.Stderr, "datacell: fed %d tuples into %s\n", n, stream)
	return sc.Err()
}

// relayStdin forwards stdin to a remote receptor record by record
// through a reconnecting writer: textual lines or, with -binary, whole
// wire frames sized from their header. A dead or restarting kernel
// costs backoff-paced redials and resent records, not lost input.
func relayStdin(addr string, binary bool) error {
	w, err := stream.NewReconnWriter(&stream.Dialer{Addr: addr})
	if err != nil {
		return err
	}
	defer w.Close()
	in := bufio.NewReaderSize(os.Stdin, 64*1024)
	records := 0
	if binary {
		head := make([]byte, ingest.WireHeaderSize)
		frame := make([]byte, 0, 64*1024)
		for {
			if _, err := io.ReadFull(in, head); err != nil {
				if err == io.EOF {
					break
				}
				return fmt.Errorf("datacell: stdin frame header: %w", err)
			}
			size, err := ingest.FrameSize(head)
			if err != nil {
				return fmt.Errorf("datacell: stdin frame: %w", err)
			}
			if cap(frame) < size {
				frame = make([]byte, size)
			}
			frame = frame[:size]
			copy(frame, head)
			if _, err := io.ReadFull(in, frame[len(head):]); err != nil {
				return fmt.Errorf("datacell: stdin frame body: %w", err)
			}
			if _, err := w.Write(frame); err != nil {
				return err
			}
			records++
		}
	} else {
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		var line []byte
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			line = append(append(line[:0], sc.Bytes()...), '\n')
			if _, err := w.Write(line); err != nil {
				return err
			}
			records++
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "datacell: relayed %d record(s) to %s (%d reconnect(s))\n",
		records, addr, w.Reconnects)
	return nil
}

// feedStdinBinary decodes binary batch frames from stdin into the named
// stream until EOF — the pipe-mode sibling of the TCP receptors' binary
// path.
func feedStdinBinary(eng *datacell.Engine, stream string) error {
	b := eng.Catalog().Basket(stream)
	if b == nil {
		return fmt.Errorf("datacell: unknown stream %q", stream)
	}
	names, types := b.UserSchema()
	fr := ingest.NewFrameReader(bufio.NewReaderSize(os.Stdin, 64*1024), types)
	batch := bat.NewEmptyRelation(names, types)
	n := 0
	for {
		_, err := fr.DecodeFrameInto(batch)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("datacell: stdin frame: %w", err)
		}
		if batch.Len() >= 1024 {
			if _, err := b.Append(batch); err != nil {
				return err
			}
			n += batch.Len()
			batch.Clear()
		}
	}
	if batch.Len() > 0 {
		if _, err := b.Append(batch); err != nil {
			return err
		}
		n += batch.Len()
	}
	fmt.Fprintf(os.Stderr, "datacell: fed %d tuples into %s\n", n, stream)
	return nil
}
