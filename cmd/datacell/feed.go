package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"time"

	"datacell"
)

const drainTimeout = 10 * time.Second

// feedStdin parses pipe-separated tuples from stdin into the named stream
// until EOF. Values are converted by the engine according to the stream's
// column types.
func feedStdin(eng *datacell.Engine, stream string) error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.Split(line, "|")
		row := make(datacell.Row, len(parts))
		for i, p := range parts {
			row[i] = p // strings are parsed per column type by Append
		}
		if err := eng.Append(stream, row); err != nil {
			fmt.Fprintf(os.Stderr, "datacell: skipping tuple %q: %v\n", line, err)
			continue
		}
		n++
	}
	fmt.Fprintf(os.Stderr, "datacell: fed %d tuples into %s\n", n, stream)
	return sc.Err()
}
