// Command datacell runs a DataCell instance from a SQL script: it creates
// the baskets, registers the continuous queries, optionally attaches TCP
// receptors and emitters, and streams results to stdout.
//
//	datacell -script app.sql
//	datacell -script app.sql -listen trades=:9000 -serve big=:9001
//	datacell -script app.sql -listen trades=:9000 -shards 4
//	echo 'ACME|250.0' | datacell -script app.sql -feed trades -print big
//	lrgen ... | datacell -script lr.sql -feed input -binary
//	datacell -script app.sql -listen trades=:9000 -admin :9090
//
// The script is standard DataCell SQL: create basket/table, declare/set,
// continuous queries with [basket expressions], and with…begin…end splits.
// Continuous select statements are registered under q1, q2, … in script
// order.
//
// TCP receptors auto-detect the wire protocol per connection: the binary
// columnar batch format and the textual pipe-separated format coexist on
// the same socket. -shards runs several receptor shards per -listen
// (parallel sockets on a wildcard port, parallel accept loops on a fixed
// one); -binary reads binary frames instead of text lines from stdin in
// -feed mode.
//
// -admin starts the observability HTTP server (Prometheus /metrics,
// /snapshot, /events, net/http/pprof). In textual -feed mode, lines
// starting with a backslash are meta-commands instead of tuples:
// \stats prints the live engine snapshot, \events the event trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"datacell"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	script := flag.String("script", "", "SQL script to execute (required)")
	feed := flag.String("feed", "", "stream to feed with tuples from stdin")
	binary := flag.Bool("binary", false, "stdin carries binary batch frames instead of text lines (with -feed or -relay)")
	shards := flag.Int("shards", 1, "receptor shards per -listen address")
	print := flag.String("print", "", "query whose results are printed to stdout")
	walDir := flag.String("wal", "", "directory for the durable ingest WAL (recovers on start)")
	admin := flag.String("admin", "", "serve /metrics, /snapshot, /events and /debug/pprof on this address")
	relay := flag.String("relay", "", "forward stdin to a remote receptor at this address (no engine; retries with backoff)")
	var listens, serves listFlag
	flag.Var(&listens, "listen", "stream=addr: attach a TCP receptor group (repeatable)")
	flag.Var(&serves, "serve", "query=addr: serve a query's results over TCP (repeatable)")
	flag.Parse()

	if *relay != "" {
		if err := relayStdin(*relay, *binary); err != nil {
			fatal(err)
		}
		return
	}
	if *script == "" {
		fmt.Fprintln(os.Stderr, "datacell: -script is required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*script)
	if err != nil {
		fatal(err)
	}
	var opts []datacell.Option
	if *walDir != "" {
		opts = append(opts, datacell.WithWAL(*walDir))
	}
	eng := datacell.New(opts...)
	if err := eng.Err(); err != nil {
		fatal(err)
	}
	infos, err := eng.Exec(string(src))
	if err != nil {
		fatal(err)
	}
	for _, info := range infos {
		if info.Continuous {
			fmt.Fprintf(os.Stderr, "registered continuous query %s\n", info.Name)
		}
	}
	if *walDir != "" {
		rec, err := eng.Recover()
		if err != nil {
			fatal(err)
		}
		if rec.Frames > 0 || rec.TruncatedBytes > 0 {
			fmt.Fprintf(os.Stderr, "wal: recovered %d frames (%d tuples) across %d stream(s), repaired %d torn bytes\n",
				rec.Frames, rec.Tuples, rec.Streams, rec.TruncatedBytes)
		}
	}

	for _, spec := range listens {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -listen %q, want stream=addr", spec))
		}
		l, err := eng.ListenIngest(name, addr, datacell.IngestOptions{Shards: *shards})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "stream %s listening on %s\n", name, strings.Join(l.Addrs(), ", "))
	}
	for _, spec := range serves {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -serve %q, want query=addr", spec))
		}
		bound, err := eng.ServeTCP(name, addr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "query %s served on %s\n", name, bound)
	}
	if *print != "" {
		_, err := eng.SubscribeQuery(*print, datacell.SubscribeOptions{OnEmit: func(em datacell.Emit) {
			for _, row := range em.Table.Rows {
				parts := make([]string, len(row))
				for i, v := range row {
					parts[i] = fmt.Sprint(v)
				}
				fmt.Println(strings.Join(parts, "|"))
			}
		}})
		if err != nil {
			fatal(err)
		}
	}

	if err := eng.Start(); err != nil {
		fatal(err)
	}
	defer eng.Stop()

	if *admin != "" {
		srv, err := eng.ServeAdmin(*admin)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "admin server on http://%s (/metrics /snapshot /events /debug/pprof)\n", srv.Addr())
	}

	if *feed != "" {
		// Feed stdin through an in-process receptor and exit when it ends.
		feeder := feedStdin
		if *binary {
			feeder = feedStdinBinary
		}
		if err := feeder(eng, *feed); err != nil {
			fatal(err)
		}
		eng.Drain(drainTimeout)
		printSnapshot(eng)
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	printSnapshot(eng)
}

// printSnapshot reports the engine's closing state — one consistent
// Engine.Snapshot instead of stitched Stats/Groups calls — to stderr.
func printSnapshot(eng *datacell.Engine) {
	snap := eng.Snapshot()
	fmt.Fprintf(os.Stderr, "engine: strategy=%s parallelism=%d auto=%v queries=%d subscriptions=%d\n",
		snap.Strategy, snap.Parallelism, snap.AutoParallelism, len(snap.Queries), snap.Subscriptions)
	for _, q := range snap.Queries {
		fmt.Fprintf(os.Stderr, "query %s: fires=%d out=%d pending=%d errors=%d\n",
			q.Name, q.Fires, q.OutRows, q.Pending, q.Errors)
	}
	for _, g := range snap.Groups {
		fmt.Fprintf(os.Stderr, "stream %s: ingested=%d stalls=%d rewires=%d\n",
			g.Stream, g.IngestTuples, g.IngestStalls, g.Rewires)
	}
	if snap.Recovery != nil {
		fmt.Fprintf(os.Stderr, "wal %s: recovered %d frames (%d tuples)\n",
			snap.WALDir, snap.Recovery.Frames, snap.Recovery.Tuples)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datacell: %v\n", err)
	os.Exit(1)
}
