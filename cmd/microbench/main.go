// Command microbench regenerates the paper's §6.1 micro-benchmark figures:
//
//	microbench -fig 4a      elapsed time vs #queries, with/without kernel
//	microbench -fig 4b      throughput vs #queries, with/without kernel
//	microbench -fig 5a      latency vs batch size for 10/100/1000 queries
//	microbench -fig 5b      strategy comparison vs #queries (kernel-wired)
//	microbench -fig 5be     strategy comparison vs #queries (public engine)
//	microbench -fig kernel  pure kernel events/second
//	microbench -fig all     everything
//
// Use -tuples to scale the stream (the paper uses 10^5).
package main

import (
	"flag"
	"fmt"
	"os"

	datacell "datacell"
	"datacell/internal/microbench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4a, 4b, 5a, 5b, 5be, kernel, all")
	tuples := flag.Int("tuples", 100_000, "tuples per run (paper: 1e5)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	run := func(name string, f func() error) {
		switch *fig {
		case name, "all":
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}
	run("4a", func() error { return fig4(*tuples, true) })
	run("4b", func() error { return fig4(*tuples, false) })
	run("5a", func() error { return fig5a(*tuples, *seed) })
	run("5b", func() error { return fig5b(*tuples, *seed) })
	run("5be", func() error { return fig5bEngine(*tuples, *seed) })
	run("kernel", func() error { return kernel(*tuples, *seed) })
	switch *fig {
	case "4a", "4b", "5a", "5b", "5be", "kernel", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

// fig4 runs the communication pipeline for 8..64 chained queries, with and
// without the kernel in the loop. elapsed=true prints Figure 4a (elapsed
// ms), else Figure 4b (throughput).
func fig4(tuples int, elapsed bool) error {
	if elapsed {
		fmt.Println("# Figure 4a: elapsed time (ms) vs number of queries")
		fmt.Println("queries\twith_kernel_ms\twithout_kernel_ms")
	} else {
		fmt.Println("# Figure 4b: throughput (10^3 tuples/s) vs number of queries")
		fmt.Println("queries\twith_kernel\twithout_kernel")
	}
	for _, q := range []int{8, 16, 32, 64} {
		with, err := microbench.RunCommPipeline(q, tuples, true)
		if err != nil {
			return err
		}
		without, err := microbench.RunCommPipeline(q, tuples, false)
		if err != nil {
			return err
		}
		if elapsed {
			fmt.Printf("%d\t%.1f\t%.1f\n", q,
				float64(with.Elapsed.Microseconds())/1000,
				float64(without.Elapsed.Microseconds())/1000)
		} else {
			fmt.Printf("%d\t%.2f\t%.2f\n", q, with.Throughput/1000, without.Throughput/1000)
		}
	}
	return nil
}

// fig5a sweeps the batch size for 10, 100 and 1000 installed queries.
func fig5a(tuples int, seed int64) error {
	fmt.Println("# Figure 5a: avg latency per tuple (µs) vs batch size")
	fmt.Println("batch\tq10\tq100\tq1000")
	for _, batch := range []int{1, 10, 100, 1_000, 10_000, 100_000} {
		if batch > tuples {
			break
		}
		fmt.Printf("%d", batch)
		for _, q := range []int{10, 100, 1_000} {
			total := tuples
			if batch == 1 && total > 20_000 {
				total = 20_000 // tuple-at-a-time at 1e5 takes minutes; scale down
			}
			res, err := microbench.RunBatchSweep(q, total, batch, 2_000, seed)
			if err != nil {
				return err
			}
			fmt.Printf("\t%.1f", float64(res.LatencyPer.Nanoseconds())/1000)
		}
		fmt.Println()
	}
	return nil
}

// fig5b compares the three processing strategies while varying the number
// of queries, at a fixed batch of `tuples`.
func fig5b(tuples int, seed int64) error {
	fmt.Println("# Figure 5b: elapsed seconds vs number of queries, per strategy")
	fmt.Println("queries\tseparate\tshared\tpartial")
	for _, q := range []int{2, 8, 32, 128, 256, 1024} {
		fmt.Printf("%d", q)
		for _, s := range []microbench.Strategy{
			microbench.StrategySeparate, microbench.StrategyShared, microbench.StrategyPartial,
		} {
			res, err := microbench.RunStrategySweep(s, q, tuples, seed)
			if err != nil {
				return err
			}
			fmt.Printf("\t%.3f", res.Elapsed.Seconds())
		}
		fmt.Println()
	}
	return nil
}

// fig5bEngine is the Figure 5b experiment driven through the public
// engine API: SQL queries, engine-level strategy selection, per-stream
// query groups. The replicas column shows the separate strategy copying
// every tuple once per query while shared and partial ingest it once.
func fig5bEngine(tuples int, seed int64) error {
	fmt.Println("# Figure 5b (public engine): elapsed seconds vs number of queries, per strategy")
	fmt.Println("queries\tseparate\tshared\tpartial\treplicas_separate")
	for _, q := range []int{2, 8, 32, 128, 256, 1024} {
		fmt.Printf("%d", q)
		var repl int64
		for _, s := range []datacell.Strategy{
			datacell.StrategySeparate, datacell.StrategyShared, datacell.StrategyPartial,
		} {
			res, err := datacell.RunFig5b(s, q, tuples, seed)
			if err != nil {
				return err
			}
			if s == datacell.StrategySeparate {
				repl = res.ReplicaAppended
			}
			fmt.Printf("\t%.3f", res.Elapsed.Seconds())
		}
		fmt.Printf("\t%d\n", repl)
	}
	return nil
}

func kernel(tuples int, seed int64) error {
	rate, err := microbench.KernelThroughput(tuples, 20, seed)
	if err != nil {
		return err
	}
	fmt.Printf("# Pure kernel activity (no communication): %.2fM events/s per factory\n", rate/1e6)
	return nil
}
