// Command microbench regenerates the paper's §6.1 micro-benchmark figures
// and the repository's scaling sweep:
//
//	microbench -fig 4a      elapsed time vs #queries, with/without kernel
//	microbench -fig 4b      throughput vs #queries, with/without kernel
//	microbench -fig 5a      latency vs batch size for 10/100/1000 queries
//	microbench -fig 5b      strategy comparison vs #queries (kernel-wired)
//	microbench -fig 5be     strategy comparison vs #queries (public engine)
//	microbench -fig scale   throughput vs parallelism, per strategy
//	microbench -fig prune   per-clone tuple counts vs selectivity × parallelism
//	microbench -fig agg     two-phase aggregation events/s vs parallelism, per strategy
//	microbench -fig adapt   ramp workload: adaptive controller vs static parallelism
//	microbench -fig ingest  loopback ingest events/s: protocol × batch × shards
//	microbench -fig wal     loopback binary ingest events/s: WAL off/on × fsync interval
//	microbench -fig kernel  pure kernel events/second
//	microbench -fig all     everything
//
// Use -tuples to scale the stream (the paper uses 10^5). With -json, each
// figure additionally writes its data points to BENCH_<fig>.json so the
// performance trajectory is machine-readable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	datacell "datacell"
	"datacell/internal/microbench"
	"datacell/internal/provenance"
)

// writeJSON dumps one figure's data points to BENCH_<fig>.json, stamped
// with the capturing environment so benchgate can flag cross-host
// comparisons.
func writeJSON(enabled bool, fig string, rows any) error {
	if !enabled {
		return nil
	}
	payload := map[string]any{"fig": fig, "rows": rows, "provenance": provenance.Capture()}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_"+fig+".json", append(data, '\n'), 0o644)
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4a, 4b, 5a, 5b, 5be, scale, prune, agg, adapt, ingest, wal, kernel, all")
	tuples := flag.Int("tuples", 100_000, "tuples per run (paper: 1e5)")
	seed := flag.Int64("seed", 1, "workload seed")
	jsonOut := flag.Bool("json", false, "also write each figure's data to BENCH_<fig>.json")
	flag.Parse()

	run := func(name string, f func() error) {
		switch *fig {
		case name, "all":
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}
	run("4a", func() error { return fig4(*tuples, true, *jsonOut) })
	run("4b", func() error { return fig4(*tuples, false, *jsonOut) })
	run("5a", func() error { return fig5a(*tuples, *seed, *jsonOut) })
	run("5b", func() error { return fig5b(*tuples, *seed, *jsonOut) })
	run("5be", func() error { return fig5bEngine(*tuples, *seed, *jsonOut) })
	run("scale", func() error { return figScale(*tuples, *seed, *jsonOut) })
	run("prune", func() error { return figPrune(*tuples, *seed, *jsonOut) })
	run("agg", func() error { return figAgg(*tuples, *seed, *jsonOut) })
	run("adapt", func() error { return figAdapt(*tuples, *seed, *jsonOut) })
	run("ingest", func() error { return figIngest(*tuples, *jsonOut) })
	run("wal", func() error { return figWAL(*tuples, *jsonOut) })
	run("kernel", func() error { return kernel(*tuples, *seed, *jsonOut) })
	switch *fig {
	case "4a", "4b", "5a", "5b", "5be", "scale", "prune", "agg", "adapt", "ingest", "wal", "kernel", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

// fig4 runs the communication pipeline for 8..64 chained queries, with and
// without the kernel in the loop. elapsed=true prints Figure 4a (elapsed
// ms), else Figure 4b (throughput).
func fig4(tuples int, elapsed, jsonOut bool) error {
	type row struct {
		Queries         int     `json:"queries"`
		WithKernelMs    float64 `json:"with_kernel_ms"`
		WithoutKernelMs float64 `json:"without_kernel_ms"`
		WithKernelTps   float64 `json:"with_kernel_tps"`
		WithoutKernTps  float64 `json:"without_kernel_tps"`
	}
	name := "4b"
	if elapsed {
		name = "4a"
		fmt.Println("# Figure 4a: elapsed time (ms) vs number of queries")
		fmt.Println("queries\twith_kernel_ms\twithout_kernel_ms")
	} else {
		fmt.Println("# Figure 4b: throughput (10^3 tuples/s) vs number of queries")
		fmt.Println("queries\twith_kernel\twithout_kernel")
	}
	var rows []row
	for _, q := range []int{8, 16, 32, 64} {
		with, err := microbench.RunCommPipeline(q, tuples, true)
		if err != nil {
			return err
		}
		without, err := microbench.RunCommPipeline(q, tuples, false)
		if err != nil {
			return err
		}
		r := row{
			Queries:         q,
			WithKernelMs:    float64(with.Elapsed.Microseconds()) / 1000,
			WithoutKernelMs: float64(without.Elapsed.Microseconds()) / 1000,
			WithKernelTps:   with.Throughput,
			WithoutKernTps:  without.Throughput,
		}
		rows = append(rows, r)
		if elapsed {
			fmt.Printf("%d\t%.1f\t%.1f\n", q, r.WithKernelMs, r.WithoutKernelMs)
		} else {
			fmt.Printf("%d\t%.2f\t%.2f\n", q, r.WithKernelTps/1000, r.WithoutKernTps/1000)
		}
	}
	return writeJSON(jsonOut, name, rows)
}

// fig5a sweeps the batch size for 10, 100 and 1000 installed queries.
func fig5a(tuples int, seed int64, jsonOut bool) error {
	type row struct {
		Batch     int     `json:"batch"`
		Queries   int     `json:"queries"`
		LatencyUs float64 `json:"latency_us"`
	}
	fmt.Println("# Figure 5a: avg latency per tuple (µs) vs batch size")
	fmt.Println("batch\tq10\tq100\tq1000")
	var rows []row
	for _, batch := range []int{1, 10, 100, 1_000, 10_000, 100_000} {
		if batch > tuples {
			break
		}
		fmt.Printf("%d", batch)
		for _, q := range []int{10, 100, 1_000} {
			total := tuples
			if batch == 1 && total > 20_000 {
				total = 20_000 // tuple-at-a-time at 1e5 takes minutes; scale down
			}
			res, err := microbench.RunBatchSweep(q, total, batch, 2_000, seed)
			if err != nil {
				return err
			}
			lat := float64(res.LatencyPer.Nanoseconds()) / 1000
			rows = append(rows, row{Batch: batch, Queries: q, LatencyUs: lat})
			fmt.Printf("\t%.1f", lat)
		}
		fmt.Println()
	}
	return writeJSON(jsonOut, "5a", rows)
}

// fig5b compares the three processing strategies while varying the number
// of queries, at a fixed batch of `tuples`.
func fig5b(tuples int, seed int64, jsonOut bool) error {
	type row struct {
		Queries  int     `json:"queries"`
		Strategy string  `json:"strategy"`
		Seconds  float64 `json:"seconds"`
		Results  int     `json:"results"`
	}
	fmt.Println("# Figure 5b: elapsed seconds vs number of queries, per strategy")
	fmt.Println("queries\tseparate\tshared\tpartial")
	var rows []row
	for _, q := range []int{2, 8, 32, 128, 256, 1024} {
		fmt.Printf("%d", q)
		for _, s := range []microbench.Strategy{
			microbench.StrategySeparate, microbench.StrategyShared, microbench.StrategyPartial,
		} {
			res, err := microbench.RunStrategySweep(s, q, tuples, seed)
			if err != nil {
				return err
			}
			rows = append(rows, row{Queries: q, Strategy: s.String(), Seconds: res.Elapsed.Seconds(), Results: res.Results})
			fmt.Printf("\t%.3f", res.Elapsed.Seconds())
		}
		fmt.Println()
	}
	return writeJSON(jsonOut, "5b", rows)
}

// fig5bEngine is the Figure 5b experiment driven through the public
// engine API: SQL queries, engine-level strategy selection, per-stream
// query groups. The replicas column shows the separate strategy copying
// every tuple once per query while shared and partial ingest it once.
func fig5bEngine(tuples int, seed int64, jsonOut bool) error {
	type row struct {
		Queries         int     `json:"queries"`
		Strategy        string  `json:"strategy"`
		Seconds         float64 `json:"seconds"`
		Results         int     `json:"results"`
		ReplicaAppended int64   `json:"replica_appended"`
	}
	fmt.Println("# Figure 5b (public engine): elapsed seconds vs number of queries, per strategy")
	fmt.Println("queries\tseparate\tshared\tpartial\treplicas_separate")
	var rows []row
	for _, q := range []int{2, 8, 32, 128, 256, 1024} {
		fmt.Printf("%d", q)
		var repl int64
		for _, s := range []datacell.Strategy{
			datacell.StrategySeparate, datacell.StrategyShared, datacell.StrategyPartial,
		} {
			res, err := datacell.RunFig5b(s, q, tuples, seed)
			if err != nil {
				return err
			}
			if s == datacell.StrategySeparate {
				repl = res.ReplicaAppended
			}
			rows = append(rows, row{
				Queries: q, Strategy: string(s),
				Seconds: res.Elapsed.Seconds(), Results: res.Results,
				ReplicaAppended: res.ReplicaAppended,
			})
			fmt.Printf("\t%.3f", res.Elapsed.Seconds())
		}
		fmt.Printf("\t%d\n", repl)
	}
	return writeJSON(jsonOut, "5be", rows)
}

// figScale sweeps the engine parallelism per strategy: one stream, 8
// disjoint predicate-window queries, threaded execution end to end. With
// hardware cores available, the partitioned wirings scale toward
// min(P, cores)×; the GOMAXPROCS column header records what this machine
// offers so the numbers can be read in context.
func figScale(tuples int, seed int64, jsonOut bool) error {
	type row struct {
		Parallelism int     `json:"parallelism"`
		Strategy    string  `json:"strategy"`
		Seconds     float64 `json:"seconds"`
		ThroughputK float64 `json:"throughput_ktps"`
		Results     int     `json:"results"`
		Partitions  int     `json:"partitions"`
	}
	const q = 8
	batch := tuples / 20
	fmt.Printf("# Scale: throughput (10^3 tuples/s) vs parallelism; %d queries, batches of %d, GOMAXPROCS=%d\n",
		q, batch, runtime.GOMAXPROCS(0))
	fmt.Println("parallelism\tseparate\tshared\tpartial")
	var rows []row
	for _, p := range []int{1, 2, 4, 8} {
		fmt.Printf("%d", p)
		for _, s := range []datacell.Strategy{
			datacell.StrategySeparate, datacell.StrategyShared, datacell.StrategyPartial,
		} {
			res, err := datacell.RunScale(s, p, q, tuples, batch, seed)
			if err != nil {
				return err
			}
			rows = append(rows, row{
				Parallelism: p, Strategy: string(s),
				Seconds: res.Elapsed.Seconds(), ThroughputK: res.Throughput / 1000,
				Results: res.Results, Partitions: res.Partitions,
			})
			fmt.Printf("\t%.1f", res.Throughput/1000)
		}
		fmt.Println()
	}
	return writeJSON(jsonOut, "scale", rows)
}

// figPrune sweeps selectivity × parallelism over a sargable range-query
// workload and reports the tuples each partition clone actually receives.
// Under blind round-robin a clone sees tuples/P regardless of the
// predicate (placement); under range routing it sees ≈ selectivity ×
// tuples/P, with the rest short-circuited to the catch-all (pruning) —
// per-clone input shrinks with P *and* with selectivity.
func figPrune(tuples int, seed int64, jsonOut bool) error {
	type row struct {
		Strategy          string  `json:"strategy"`
		Selectivity       float64 `json:"selectivity"`
		Parallelism       int     `json:"parallelism"`
		Partitions        int     `json:"partitions"`
		Routing           string  `json:"routing"`
		PerClone          float64 `json:"per_clone_tuples"`
		PlacementPerClone float64 `json:"placement_per_clone_tuples"`
		Pruned            int64   `json:"pruned_tuples"`
		Results           int     `json:"results"`
		Seconds           float64 `json:"seconds"`
		ThroughputK       float64 `json:"throughput_ktps"`
	}
	const q = 8
	batch := tuples / 20
	fmt.Printf("# Prune: avg tuples per clone vs selectivity and parallelism; %d range queries, batches of %d, GOMAXPROCS=%d\n",
		q, batch, runtime.GOMAXPROCS(0))
	fmt.Println("strategy\tselectivity\tP\trouting\tper_clone\tplacement_per_clone\tpruned\tresults")
	var rows []row
	for _, s := range []datacell.Strategy{datacell.StrategySeparate, datacell.StrategyShared} {
		for _, sel := range []float64{0.1, 0.5, 1.0} {
			for _, p := range []int{1, 2, 4, 8} {
				res, err := datacell.RunPrune(s, p, q, tuples, sel, batch, seed)
				if err != nil {
					return err
				}
				rows = append(rows, row{
					Strategy: string(s), Selectivity: sel,
					Parallelism: p, Partitions: res.Partitions, Routing: res.Routing,
					PerClone: res.PerClone, PlacementPerClone: res.PlacementPerClone,
					Pruned: res.Pruned, Results: res.Results,
					Seconds: res.Elapsed.Seconds(), ThroughputK: res.Throughput / 1000,
				})
				fmt.Printf("%s\t%.2f\t%d\t%s\t%.0f\t%.0f\t%d\t%d\n",
					s, sel, p, res.Routing, res.PerClone, res.PlacementPerClone, res.Pruned, res.Results)
			}
		}
	}
	return writeJSON(jsonOut, "prune", rows)
}

// figAgg sweeps two-phase partitioned aggregation: grouped and global
// aggregate queries at P ∈ {1, 2, 4, 8} per sharing strategy. At P>1 every
// query runs as per-partition partial aggregates folded by a combining
// merge emitter; the events/s floor of the best column is what the CI gate
// guards in BENCH_agg.json.
func figAgg(tuples int, seed int64, jsonOut bool) error {
	type row struct {
		Strategy     string  `json:"strategy"`
		Parallelism  int     `json:"parallelism"`
		Partitions   int     `json:"partitions"`
		Routing      string  `json:"routing"`
		Queries      int     `json:"queries"`
		Tuples       int     `json:"tuples"`
		EventsPerSec float64 `json:"events_per_second"`
		Results      int     `json:"results"`
		Seconds      float64 `json:"seconds"`
	}
	const q = 8
	batch := tuples / 20
	fmt.Printf("# Agg: two-phase aggregation events/s (10^3) vs parallelism; %d queries, batches of %d, GOMAXPROCS=%d\n",
		q, batch, runtime.GOMAXPROCS(0))
	fmt.Println("parallelism\tseparate\tshared\tpartial")
	var rows []row
	for _, p := range []int{1, 2, 4, 8} {
		fmt.Printf("%d", p)
		for _, s := range []datacell.Strategy{
			datacell.StrategySeparate, datacell.StrategyShared, datacell.StrategyPartial,
		} {
			res, err := datacell.RunAgg(s, p, q, tuples, batch, seed)
			if err != nil {
				return err
			}
			rows = append(rows, row{
				Strategy: string(s), Parallelism: p,
				Partitions: res.Partitions, Routing: res.Routing,
				Queries: res.Queries, Tuples: res.Tuples,
				EventsPerSec: res.Throughput, Results: res.Results,
				Seconds: res.Elapsed.Seconds(),
			})
			fmt.Printf("\t%.1f", res.Throughput/1000)
		}
		fmt.Println()
	}
	return writeJSON(jsonOut, "agg", rows)
}

// figAdapt races the adaptive controller against static parallelism on a
// stepped load profile (trickle → burst → trickle → burst). The
// interesting column is auto: it must land within the benchgate's floor
// of the best static setting (committed in BENCH_adapt.json) while never
// falling below P=1 — on a one-core box the controller simply refuses to
// scale up, so auto ≈ static-1 by construction.
func figAdapt(tuples int, seed int64, jsonOut bool) error {
	type row struct {
		Mode         string  `json:"mode"`
		Strategy     string  `json:"strategy"`
		Tuples       int     `json:"tuples"`
		EventsPerSec float64 `json:"events_per_second"`
		Results      int     `json:"results"`
		Rewires      int64   `json:"rewires"`
		FinalP       int     `json:"final_p"`
		MaxP         int     `json:"max_p"`
		Seconds      float64 `json:"seconds"`
	}
	fmt.Printf("# Adapt: ramp workload (trickle/burst steps) events/s (10^3); GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))
	fmt.Println("mode\tevents_per_sec\trewires\tmax_p\tfinal_p")
	var rows []row
	for _, mode := range []string{"static-1", "static-4", "auto"} {
		res, err := datacell.RunAdapt(mode, tuples, seed)
		if err != nil {
			return err
		}
		rows = append(rows, row{
			Mode: res.Mode, Strategy: string(res.Strategy), Tuples: res.Tuples,
			EventsPerSec: res.Throughput, Results: res.Results,
			Rewires: res.Rewires, FinalP: res.FinalP, MaxP: res.MaxP,
			Seconds: res.Elapsed.Seconds(),
		})
		fmt.Printf("%s\t%.1f\t%d\t%d\t%d\n", res.Mode, res.Throughput/1000, res.Rewires, res.MaxP, res.FinalP)
	}
	return writeJSON(jsonOut, "adapt", rows)
}

// figIngest sweeps the ingest periphery over loopback TCP: textual vs
// binary wire protocol × batch size × receptor shard count, reporting
// end-to-end events/second (first dial to kernel quiescence). It is the
// Figure 4 experiment with the communication pipeline itself as the
// swept variable; the headline ratio — binary sharded vs textual
// single-socket — is what the CI gate guards in BENCH_ingest.json.
func figIngest(tuples int, jsonOut bool) error {
	type row struct {
		Protocol     string  `json:"protocol"`
		Shards       int     `json:"shards"`
		Batch        int     `json:"batch"`
		Tuples       int     `json:"tuples"`
		EventsPerSec float64 `json:"events_per_second"`
		Frames       int64   `json:"frames"`
		Stalls       int64   `json:"stalls"`
	}
	fmt.Printf("# Ingest: events/s (10^6) over loopback TCP; protocol × batch × shards, GOMAXPROCS=%d\n",
		runtime.GOMAXPROCS(0))
	fmt.Println("protocol\tbatch\tshards\tevents_per_sec")
	var rows []row
	baseline := 0.0 // textual single-socket at the largest batch
	best := 0.0     // best binary sharded setting
	for _, binary := range []bool{false, true} {
		for _, batch := range []int{64, 1024} {
			for _, shards := range []int{1, 4} {
				res, err := datacell.RunIngest(binary, shards, batch, tuples)
				if err != nil {
					return err
				}
				proto := "text"
				if binary {
					proto = "binary"
				}
				rows = append(rows, row{
					Protocol: proto, Shards: shards, Batch: batch, Tuples: tuples,
					EventsPerSec: res.EventsPerSec, Frames: res.Frames, Stalls: res.Stalls,
				})
				fmt.Printf("%s\t%d\t%d\t%.2fM\n", proto, batch, shards, res.EventsPerSec/1e6)
				if !binary && shards == 1 && res.EventsPerSec > baseline {
					baseline = res.EventsPerSec
				}
				if binary && shards > 1 && res.EventsPerSec > best {
					best = res.EventsPerSec
				}
			}
		}
	}
	if baseline > 0 {
		fmt.Printf("# binary sharded vs textual single-socket: %.2fx\n", best/baseline)
	}
	return writeJSON(jsonOut, "ingest", rows)
}

// figWAL sweeps the durability tax: binary loopback ingest with the WAL
// off and on at two group-commit intervals, over the same shards × batch
// grid the ingest figure uses for its binary rows. benchgate's
// -wal-baseline holds the WAL-on rows to a fraction of both their own
// committed floors and the committed WAL-off ingest numbers.
func figWAL(tuples int, jsonOut bool) error {
	type row struct {
		WAL            string  `json:"wal"`
		SyncIntervalMS float64 `json:"sync_interval_ms"`
		Protocol       string  `json:"protocol"`
		Shards         int     `json:"shards"`
		Batch          int     `json:"batch"`
		Tuples         int     `json:"tuples"`
		EventsPerSec   float64 `json:"events_per_second"`
		Frames         int64   `json:"frames"`
		WALBytes       int64   `json:"wal_bytes"`
	}
	fmt.Printf("# WAL: binary ingest events/s (10^6) over loopback TCP; wal off/on × fsync interval, GOMAXPROCS=%d\n",
		runtime.GOMAXPROCS(0))
	fmt.Println("wal\tsync_ms\tbatch\tshards\tevents_per_sec")
	type mode struct {
		on   bool
		sync time.Duration
	}
	modes := []mode{{false, 0}, {true, 2 * time.Millisecond}, {true, 10 * time.Millisecond}}
	var rows []row
	off := map[[2]int]float64{} // (shards,batch) → WAL-off events/s
	worst := 1.0
	for _, m := range modes {
		for _, batch := range []int{64, 1024} {
			for _, shards := range []int{1, 4} {
				res, err := datacell.RunIngestWAL(m.on, m.sync, shards, batch, tuples)
				if err != nil {
					return err
				}
				walCol := "off"
				if m.on {
					walCol = "on"
				}
				rows = append(rows, row{
					WAL: walCol, SyncIntervalMS: float64(m.sync) / float64(time.Millisecond),
					Protocol: "binary", Shards: shards, Batch: batch, Tuples: tuples,
					EventsPerSec: res.EventsPerSec, Frames: res.Frames, WALBytes: res.WALBytes,
				})
				fmt.Printf("%s\t%g\t%d\t%d\t%.2fM\n",
					walCol, float64(m.sync)/float64(time.Millisecond), batch, shards, res.EventsPerSec/1e6)
				key := [2]int{shards, batch}
				if !m.on {
					off[key] = res.EventsPerSec
				} else if base := off[key]; base > 0 {
					if r := res.EventsPerSec / base; r < worst {
						worst = r
					}
				}
			}
		}
	}
	fmt.Printf("# worst WAL-on / WAL-off ratio: %.2fx\n", worst)
	return writeJSON(jsonOut, "wal", rows)
}

// kernel measures pure kernel activity and the firing path's allocation
// profile: allocs/firing and bytes/firing cover one Append+fire+drain
// round (including the amortised warm-up growth of the fresh baskets; the
// steady-state firing itself is allocation free).
func kernel(tuples int, seed int64, jsonOut bool) error {
	const rounds = 20
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	rate, err := microbench.KernelThroughput(tuples, rounds, seed)
	if err != nil {
		return err
	}
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / rounds
	bytes := float64(after.TotalAlloc-before.TotalAlloc) / rounds
	fmt.Printf("# Pure kernel activity (no communication): %.2fM events/s per factory, %.1f allocs/firing, %.0f B/firing\n",
		rate/1e6, allocs, bytes)
	if !jsonOut {
		return nil
	}
	return mergeKernelJSON(map[string]any{
		"phase":             "this_pr",
		"events_per_second": rate,
		"allocs_per_firing": allocs,
		"bytes_per_firing":  bytes,
	})
}

// mergeKernelJSON updates BENCH_kernel.json in place: the file carries
// the performance trajectory (baseline rows, go-test benchmark rows),
// so only the tool's own current-measurement row is replaced — a
// regeneration must never destroy the committed baseline record.
func mergeKernelJSON(row map[string]any) error {
	doc := map[string]any{}
	if data, err := os.ReadFile("BENCH_kernel.json"); err == nil {
		// A corrupt file starts the trajectory over rather than erroring.
		_ = json.Unmarshal(data, &doc)
	}
	var rows []any
	if prev, ok := doc["rows"].([]any); ok {
		for _, r := range prev {
			if m, ok := r.(map[string]any); ok && m["phase"] == "this_pr" && m["benchmark"] == nil {
				continue // the row this measurement replaces
			}
			rows = append(rows, r)
		}
	}
	doc["fig"] = "kernel"
	doc["rows"] = append(rows, row)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_kernel.json", append(data, '\n'), 0o644)
}
