package datacell

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"
)

// AdaptResult is one mode of the adaptive ramp benchmark
// (`microbench -fig adapt`): the same stepped load profile run under one
// parallelism policy.
type AdaptResult struct {
	Mode       string // "static-1", "static-4", "auto"
	Strategy   Strategy
	Tuples     int
	Elapsed    time.Duration
	Throughput float64 // stream tuples per second, feed to drain
	Results    int     // result tuples across all queries
	Rewires    int64   // wiring rebuilds over the run (controller + setup)
	FinalP     int     // partition target when the run ended
	MaxP       int     // highest partition target observed during the run
}

// RunAdapt measures one parallelism policy against a ramp workload: the
// feed steps between trickle phases (rate-limited, the group near idle)
// and burst phases (closed-loop, the group backpressured), which is the
// profile static settings cannot win — P=1 saturates in the bursts,
// wide static P pays routing and merge overhead in the troughs (and on a
// small box loses outright, as the committed BENCH_agg sweep shows).
// Mode is "auto" or "static-N". The auto controller runs with
// benchmark-timescale options; its cap stays min(4, GOMAXPROCS) so a
// one-core box never scales past the P=1 baseline.
func RunAdapt(mode string, tuples int, seed int64) (AdaptResult, error) {
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(StrategySeparate); err != nil {
		return AdaptResult{}, err
	}
	auto := mode == "auto"
	if auto {
		maxP := 4
		if n := runtime.GOMAXPROCS(0); n < maxP {
			maxP = n
		}
		eng.SetAdaptOptions(AdaptOptions{
			Tick:           5 * time.Millisecond,
			HighWater:      8192,
			LowWater:       1024,
			Patience:       2,
			Cooldown:       50 * time.Millisecond,
			MaxParallelism: maxP,
		})
		if err := eng.SetParallelismAuto(); err != nil {
			return AdaptResult{}, err
		}
	} else {
		var p int
		if _, err := fmt.Sscanf(mode, "static-%d", &p); err != nil {
			return AdaptResult{}, fmt.Errorf("datacell: adapt mode %q (want \"auto\" or \"static-N\")", mode)
		}
		if err := eng.SetParallelism(p); err != nil {
			return AdaptResult{}, err
		}
	}
	if _, err := eng.Exec(`create basket s (k int, v int)`); err != nil {
		return AdaptResult{}, err
	}
	queries := []NamedQuery{
		{Name: "rng", SQL: `select t.v from [select * from s where v >= 20000 and v < 60000] t`},
		{Name: "agg", SQL: `select t.k, avg(t.v) as a, count(*) as n from [select * from s where v < 80000] t group by t.k`},
		{Name: "rr", SQL: `select t.k, t.v from [select * from s] t where t.v % 2 = 0`},
	}
	if err := eng.RegisterQueries(queries); err != nil {
		return AdaptResult{}, err
	}
	if err := eng.Start(); err != nil {
		return AdaptResult{}, err
	}

	// Ramp profile: trickle 10%, burst 40%, trickle 10%, burst 40%.
	type phase struct {
		frac  float64
		burst bool
	}
	phases := []phase{{0.1, false}, {0.4, true}, {0.1, false}, {0.4, true}}
	rng := rand.New(rand.NewSource(seed))
	maxP := 1
	observe := func() {
		for _, g := range eng.Groups() {
			if g.Stream == "s" && g.CurrentP > maxP {
				maxP = g.CurrentP
			}
		}
	}
	feed := func(n, batch int, pause time.Duration) error {
		rows := make([]Row, 0, batch)
		for fed := 0; fed < n; {
			m := min(batch, n-fed)
			rows = rows[:0]
			for i := 0; i < m; i++ {
				rows = append(rows, Row{rng.Int63n(256), rng.Int63n(100_000)})
			}
			if err := eng.Append("s", rows...); err != nil {
				return err
			}
			fed += m
			observe()
			if pause > 0 {
				time.Sleep(pause)
			}
		}
		return nil
	}
	start := time.Now()
	for _, ph := range phases {
		n := int(float64(tuples) * ph.frac)
		if ph.burst {
			if err := feed(n, 5000, 0); err != nil {
				return AdaptResult{}, err
			}
		} else if err := feed(n, 500, 2*time.Millisecond); err != nil {
			return AdaptResult{}, err
		}
	}
	if !eng.Drain(120 * time.Second) {
		return AdaptResult{}, fmt.Errorf("datacell: adapt run (%s) did not drain", mode)
	}
	elapsed := time.Since(start)
	observe()
	res := AdaptResult{
		Mode:       mode,
		Strategy:   StrategySeparate,
		Tuples:     tuples,
		Elapsed:    elapsed,
		Throughput: float64(tuples) / elapsed.Seconds(),
		MaxP:       maxP,
		FinalP:     1,
	}
	for _, nq := range queries {
		out, err := eng.Out(nq.Name)
		if err != nil {
			return AdaptResult{}, err
		}
		res.Results += out.Len()
	}
	for _, g := range eng.Groups() {
		if g.Stream == "s" {
			res.Rewires = g.Rewires
			res.FinalP = g.CurrentP
		}
	}
	return res, nil
}
