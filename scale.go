package datacell

import (
	"fmt"
	"math/rand"
	"time"
)

// ScaleResult is one point of the partitioned-execution scaling sweep
// (`microbench -fig scale`): end-to-end throughput of a single-stream,
// multi-query workload at one (strategy, parallelism) setting.
type ScaleResult struct {
	Strategy    Strategy
	Parallelism int
	Queries     int
	Tuples      int
	Batch       int
	Elapsed     time.Duration
	Throughput  float64 // stream tuples per second, feed to drain
	Results     int     // result tuples across all queries
	Partitions  int     // partitions the group wiring actually uses
}

// RunScale measures end-to-end throughput of q continuous range queries
// over one stream at the given parallelism, under the threaded scheduler —
// receptor, splitter, partition clones, merge emitters and the per-
// partition strategy wirings all run as independent threads, the paper's
// architecture scaled over P partitions. The workload is the Figure 5b
// query set (disjoint predicate windows registered through the SQL API);
// tuples arrive in batches of `batch` and the elapsed time spans the first
// append to full quiescence.
//
// Wall-clock scaling with P requires hardware cores: the partitions are
// real OS-scheduled threads, so on an N-core machine throughput grows
// toward min(P, N)× for kernel-bound workloads, while on a single core the
// sweep degenerates to a constant (the work is conserved, only its
// placement changes).
func RunScale(strategy Strategy, parallelism, q, tuples, batch int, seed int64) (ScaleResult, error) {
	eng := New()
	defer eng.Stop()
	if err := eng.SetStrategy(strategy); err != nil {
		return ScaleResult{}, err
	}
	if err := eng.SetParallelism(parallelism); err != nil {
		return ScaleResult{}, err
	}
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		return ScaleResult{}, err
	}
	const width = 10
	domain := int64(10_000)
	if int64(q)*width > domain {
		domain = int64(q) * width
	}
	queries := make([]NamedQuery, q)
	for i := 0; i < q; i++ {
		lo := int64(i) * width
		hi := lo + width
		queries[i] = NamedQuery{
			Name: fmt.Sprintf("scale_%d", i),
			SQL:  fmt.Sprintf(`select t.v from [select * from s where v >= %d and v < %d] t`, lo, hi),
		}
	}
	if err := eng.RegisterQueries(queries); err != nil {
		return ScaleResult{}, err
	}
	if err := eng.Start(); err != nil {
		return ScaleResult{}, err
	}
	if batch < 1 {
		batch = tuples
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, 0, batch)
	start := time.Now()
	for fed := 0; fed < tuples; {
		n := min(batch, tuples-fed)
		rows = rows[:0]
		for i := 0; i < n; i++ {
			rows = append(rows, Row{rng.Int63n(domain)})
		}
		if err := eng.Append("s", rows...); err != nil {
			return ScaleResult{}, err
		}
		fed += n
	}
	if !eng.Drain(120 * time.Second) {
		return ScaleResult{}, fmt.Errorf("datacell: scale run (%s, P=%d) did not drain", strategy, parallelism)
	}
	elapsed := time.Since(start)
	res := ScaleResult{
		Strategy:    strategy,
		Parallelism: parallelism,
		Queries:     q,
		Tuples:      tuples,
		Batch:       batch,
		Elapsed:     elapsed,
		Throughput:  float64(tuples) / elapsed.Seconds(),
		Partitions:  1,
	}
	for i := 0; i < q; i++ {
		out, err := eng.Out(fmt.Sprintf("scale_%d", i))
		if err != nil {
			return ScaleResult{}, err
		}
		res.Results += out.Len()
	}
	for _, g := range eng.Groups() {
		if g.Partitions > res.Partitions {
			res.Partitions = g.Partitions
		}
	}
	return res, nil
}
