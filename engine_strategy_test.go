package datacell

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"testing"
	"time"
)

// strategyWorkload registers nQueries continuous queries with disjoint
// predicate windows over one stream, feeds a randomized tagged stream in
// several batches with a synchronous drain between them, and returns the
// delivered tag multiset per query (sorted, i.e. order-insensitive).
func strategyWorkload(t *testing.T, strategy Strategy, nQueries, batches, perBatch int, seed int64) map[string][]int64 {
	t.Helper()
	eng := New()
	if _, err := eng.Exec(`create basket s (v int, tag int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetStrategy(strategy); err != nil {
		t.Fatal(err)
	}
	const width = 80
	domain := int64(nQueries*width + 120) // tail of the domain is covered by no query
	for i := 0; i < nQueries; i++ {
		lo, hi := int64(i)*width, int64(i+1)*width
		src := fmt.Sprintf(`select t.tag from [select * from s where v >= %d and v < %d] t`, lo, hi)
		if err := eng.RegisterQuery(fmt.Sprintf("w%d", i), src); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	tag := int64(0)
	for b := 0; b < batches; b++ {
		rows := make([]Row, perBatch)
		for i := range rows {
			tag++
			rows[i] = Row{rng.Int63n(domain), tag}
		}
		if err := eng.Append("s", rows...); err != nil {
			t.Fatal(err)
		}
		if err := eng.RunSync(); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string][]int64{}
	for i := 0; i < nQueries; i++ {
		name := fmt.Sprintf("w%d", i)
		out, err := eng.Out(name)
		if err != nil {
			t.Fatal(err)
		}
		tags := append([]int64(nil), out.TakeAll().ColByName("tag").Ints()...)
		slices.Sort(tags)
		got[name] = tags
	}
	return got
}

func TestEngineStrategyDifferential(t *testing.T) {
	// The same randomized workload must deliver identical per-query result
	// multisets under all three strategies.
	const nQueries, batches, perBatch, seed = 6, 5, 400, 11
	want := strategyWorkload(t, StrategySeparate, nQueries, batches, perBatch, seed)
	total := 0
	for _, tags := range want {
		total += len(tags)
	}
	if total == 0 {
		t.Fatal("workload produced no results at all")
	}
	for _, strategy := range []Strategy{StrategyShared, StrategyPartial} {
		got := strategyWorkload(t, strategy, nQueries, batches, perBatch, seed)
		for name, tags := range want {
			if !slices.Equal(got[name], tags) {
				t.Errorf("%s: query %s delivered %d tags, separate delivered %d",
					strategy, name, len(got[name]), len(tags))
			}
		}
	}
}

func TestEngineStrategyPragmaAndGroups(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if eng.Strategy() != StrategySeparate {
		t.Fatalf("default strategy = %s", eng.Strategy())
	}
	if _, err := eng.Exec(`set strategy = 'shared'`); err != nil {
		t.Fatal(err)
	}
	if eng.Strategy() != StrategyShared {
		t.Fatalf("strategy after pragma = %s", eng.Strategy())
	}
	if _, err := eng.Exec(`set strategy = 'bogus'`); err == nil {
		t.Error("bogus strategy accepted")
	}
	// Three queries jointly covering the whole domain share one basket:
	// the stream ingests every tuple exactly once, no replicas exist.
	for i := 0; i < 3; i++ {
		src := fmt.Sprintf(`select t.v from [select * from s where v >= %d and v < %d] t`, i*100, (i+1)*100)
		if err := eng.RegisterQuery(fmt.Sprintf("q%d", i), src); err != nil {
			t.Fatal(err)
		}
	}
	rows := make([]Row, 100)
	for i := range rows {
		rows[i] = Row{i * 3} // 0..297, all covered by some window
	}
	if err := eng.Append("s", rows...); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	gs := eng.Groups()
	if len(gs) != 1 || gs[0].Stream != "s" {
		t.Fatalf("groups: %+v", gs)
	}
	if gs[0].Strategy != StrategyShared || len(gs[0].Members) != 3 || gs[0].Taps != 0 {
		t.Errorf("group wiring: %+v", gs[0])
	}
	if gs[0].ReplicaAppended != 0 {
		t.Errorf("shared wiring replicated %d tuples", gs[0].ReplicaAppended)
	}
	if st := eng.Catalog().Basket("s").Stats(); st.Appended != 100 {
		t.Errorf("stream ingested %d tuples, want 100", st.Appended)
	}
	// Live switch to separate: the groups rewire and new tuples are
	// replicated once per query.
	if err := eng.SetStrategy(StrategySeparate); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		rows[i] = Row{i * 3}
	}
	if err := eng.Append("s", rows...); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	gs = eng.Groups()
	if gs[0].Strategy != StrategySeparate {
		t.Errorf("group strategy after switch: %+v", gs[0])
	}
	if gs[0].ReplicaAppended != 300 {
		t.Errorf("separate wiring replicated %d tuples, want 300", gs[0].ReplicaAppended)
	}
	// All 200 tuples were delivered exactly once overall.
	totalOut := int64(0)
	for _, st := range eng.Stats() {
		totalOut += st.OutRows
	}
	if totalOut != 200 {
		t.Errorf("delivered %d results, want 200", totalOut)
	}
}

func TestEngineSharedDynamicWhileRunning(t *testing.T) {
	// Queries join and leave a shared-basket group while the scheduler
	// runs; the group rewires live without losing the survivors.
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetStrategy(StrategyShared); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("evens", `select t.v from [select * from s where v < 50] t`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	waitFor := func(name string, n int) {
		t.Helper()
		out, err := eng.Out(name)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for out.Stats().Appended < int64(n) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := out.Stats().Appended; got != int64(n) {
			t.Fatalf("%s delivered %d results, want %d", name, got, n)
		}
	}

	if err := eng.Append("s", Row{10}, Row{60}); err != nil {
		t.Fatal(err)
	}
	waitFor("evens", 1)

	// A second member joins the running group.
	if err := eng.RegisterQuery("odds", `select t.v from [select * from s where v >= 50] t`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("s", Row{20}, Row{70}); err != nil {
		t.Fatal(err)
	}
	waitFor("evens", 2)
	// The residual 60 stayed in the shared basket (no query covered it),
	// so the late joiner picks it up along with the fresh 70 — shared
	// baskets give predicate windows to late subscribers for free.
	waitFor("odds", 2)

	// The first member leaves; the survivor keeps processing.
	if err := eng.RemoveQuery("evens"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("s", Row{30}, Row{80}); err != nil {
		t.Fatal(err)
	}
	waitFor("odds", 3)
	if !eng.Drain(5 * time.Second) {
		t.Fatal("network did not quiesce")
	}
}

func TestEngineExplainShowsWiring(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(`set strategy = 'partial'`); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Explain(`select * from [select * from s] t where t.v > 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "strategy partial") || !strings.Contains(out, "query group on stream s") {
		t.Errorf("explain missing wiring info:\n%s", out)
	}
	if !strings.Contains(out, "stream-scan artifact") {
		t.Errorf("explain missing stream-scan artifact line:\n%s", out)
	}
}

func TestFig5bPublicEngineNoReplicationUnderSharing(t *testing.T) {
	// The acceptance check of the Figure 5b refactor: under shared and
	// partial wiring the engine ingests each tuple exactly once, with no
	// per-query replication, and all three strategies agree on results.
	const q, tuples, seed = 8, 5_000, 3
	var results [3]int
	for i, s := range []Strategy{StrategySeparate, StrategyShared, StrategyPartial} {
		res, err := RunFig5b(s, q, tuples, seed)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		results[i] = res.Results
		if res.StreamAppended != tuples {
			t.Errorf("%s: stream ingested %d tuples, want %d", s, res.StreamAppended, tuples)
		}
		switch s {
		case StrategySeparate:
			if res.ReplicaAppended != int64(q*tuples) {
				t.Errorf("separate: replicated %d tuples, want %d", res.ReplicaAppended, q*tuples)
			}
		default:
			if res.ReplicaAppended != 0 {
				t.Errorf("%s: replicated %d tuples, want 0", s, res.ReplicaAppended)
			}
		}
	}
	if results[0] == 0 {
		t.Fatal("no results at all")
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Errorf("strategies disagree: separate=%d shared=%d partial=%d",
			results[0], results[1], results[2])
	}
}

func TestEngineRegisterQueriesBatch(t *testing.T) {
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	qs := make([]NamedQuery, 10)
	for i := range qs {
		qs[i] = NamedQuery{
			Name: fmt.Sprintf("b%d", i),
			SQL:  fmt.Sprintf(`select t.v from [select * from s where v >= %d and v < %d] t`, i*10, (i+1)*10),
		}
	}
	if err := eng.RegisterQueries(qs); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQueries(qs[:1]); err == nil {
		t.Error("duplicate batch registration accepted")
	}
	rows := make([]Row, 100)
	for i := range rows {
		rows[i] = Row{i}
	}
	if err := eng.Append("s", rows...); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, st := range eng.Stats() {
		total += st.OutRows
	}
	if total != 100 {
		t.Errorf("delivered %d results, want 100", total)
	}
	gs := eng.Groups()
	if len(gs) != 1 || len(gs[0].Members) != 10 {
		t.Fatalf("groups: %+v", gs)
	}
}

func TestEngineRemoveQueryDoesNotRecycleReplicaResidue(t *testing.T) {
	// A removed query's private replica retains tuples it never covered;
	// the rewire must not mistake them for in-flight stream data and feed
	// them back (the surviving queries already received their own copies).
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("low", `select t.v from [select * from s where v < 50] t`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("high", `select t.v from [select * from s where v >= 50] t`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("s", Row{10}, Row{60}); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	// low's replica still holds the uncovered 60; removing low rewires
	// the group and must drop that residue, not recycle it.
	if err := eng.RemoveQuery("low"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("s", Row{70}); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Out("high")
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Stats().Appended; got != 2 { // 60 and 70, each once
		t.Errorf("high delivered %d results, want 2 (residue recycled?)", got)
	}
}

func TestEngineRegisterQueriesPartialFailureStillWires(t *testing.T) {
	// A failing batch registration must leave the already-added members
	// wired and executing, not dormant in an unwired group.
	eng := New()
	if _, err := eng.Exec(`create basket s (v int)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery("dup", `select t.v from [select * from s where v >= 50] t`); err != nil {
		t.Fatal(err)
	}
	err := eng.RegisterQueries([]NamedQuery{
		{Name: "fresh", SQL: `select t.v from [select * from s where v < 50] t`},
		{Name: "dup", SQL: `select t.v from [select * from s] t`},
	})
	if err == nil {
		t.Fatal("duplicate in batch accepted")
	}
	if err := eng.Append("s", Row{10}, Row{60}); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSync(); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Out("fresh")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Errorf("fresh delivered %d results, want 1 (left unwired?)", out.Len())
	}
}

func TestEngineStrategySwitchMidWorkloadNoLossNoDup(t *testing.T) {
	// Switching strategy between batches must neither lose nor duplicate
	// deliveries relative to a fixed-strategy run.
	const nQueries, perBatch, seed = 4, 300, 23
	baseline := strategyWorkload(t, StrategySeparate, nQueries, 4, perBatch, seed)

	eng := New()
	if _, err := eng.Exec(`create basket s (v int, tag int)`); err != nil {
		t.Fatal(err)
	}
	const width = 80
	domain := int64(nQueries*width + 120)
	for i := 0; i < nQueries; i++ {
		src := fmt.Sprintf(`select t.tag from [select * from s where v >= %d and v < %d] t`, int64(i)*width, int64(i+1)*width)
		if err := eng.RegisterQuery(fmt.Sprintf("w%d", i), src); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	tag := int64(0)
	for b, strat := range []Strategy{StrategySeparate, StrategyShared, StrategyPartial, StrategySeparate} {
		_ = b
		if err := eng.SetStrategy(strat); err != nil {
			t.Fatal(err)
		}
		rows := make([]Row, perBatch)
		for i := range rows {
			tag++
			rows[i] = Row{rng.Int63n(domain), tag}
		}
		if err := eng.Append("s", rows...); err != nil {
			t.Fatal(err)
		}
		if err := eng.RunSync(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nQueries; i++ {
		name := fmt.Sprintf("w%d", i)
		out, err := eng.Out(name)
		if err != nil {
			t.Fatal(err)
		}
		tags := append([]int64(nil), out.TakeAll().ColByName("tag").Ints()...)
		slices.Sort(tags)
		if !slices.Equal(tags, baseline[name]) {
			t.Errorf("query %s: switching run delivered %d tags, fixed separate delivered %d",
				name, len(tags), len(baseline[name]))
		}
	}
}
